let mean xs =
  let n = Array.length xs in
  if n = 0 then Float.nan
  else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        let d = x -. m in
        acc := !acc +. (d *. d))
      xs;
    !acc /. float_of_int (n - 1)
  end

let std xs = Float.sqrt (variance xs)
let min xs = Array.fold_left Float.min infinity xs
let max xs = Array.fold_left Float.max neg_infinity xs

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.quantile: empty array";
  if q < 0.0 || q > 1.0 then invalid_arg "Summary.quantile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let h = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor h) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = h -. Float.floor h in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = quantile xs 0.5

let covariance xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Summary.covariance: length mismatch";
  if n < 2 then 0.0
  else begin
    let mx = mean xs and my = mean ys in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. ((xs.(i) -. mx) *. (ys.(i) -. my))
    done;
    !acc /. float_of_int (n - 1)
  end

let correlation xs ys =
  let sx = std xs and sy = std ys in
  if sx = 0.0 || sy = 0.0 then 0.0 else covariance xs ys /. (sx *. sy)
