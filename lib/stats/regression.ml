type fit = { slope : float; intercept : float; r2 : float }

let fit xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Regression.fit: length mismatch";
  if n < 2 then invalid_arg "Regression.fit: need at least two points";
  let mx = Summary.mean xs and my = Summary.mean ys in
  let sxx = ref 0.0 and sxy = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxx := !sxx +. (dx *. dx);
    sxy := !sxy +. (dx *. dy);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0.0 then invalid_arg "Regression.fit: constant x";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r2 = if !syy = 0.0 then 0.0 else !sxy *. !sxy /. (!sxx *. !syy) in
  { slope; intercept; r2 }

let fit_heights ys =
  let xs = Array.init (Array.length ys) float_of_int in
  fit xs ys

let predict f x = (f.slope *. x) +. f.intercept

let relative_change f ~n =
  let y0 = predict f 0.0 in
  let y1 = predict f (float_of_int (n - 1)) in
  if Float.abs y0 < 1e-9 then if y1 > y0 then 1.0 else 0.0
  else (y1 -. y0) /. y0
