(** Probability distributions: samplers and log-densities.

    Every sampler takes an explicit {!Rng.t}.  Log-densities are used by the
    MCMC targets; samplers drive the simulator and synthetic workloads. *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** Uniform draw on [\[lo, hi)]. *)

val uniform_log_pdf : lo:float -> hi:float -> float -> float
(** Log-density of the uniform distribution ([neg_infinity] outside). *)

val normal : Rng.t -> mu:float -> sigma:float -> float
(** Gaussian draw (Box–Muller; no state is cached so draws are independent of
    call interleaving). *)

val normal_log_pdf : mu:float -> sigma:float -> float -> float

val exponential : Rng.t -> rate:float -> float
(** Exponential draw with rate λ (mean 1/λ). *)

val exponential_log_pdf : rate:float -> float -> float

val gamma : Rng.t -> shape:float -> scale:float -> float
(** Gamma draw (Marsaglia–Tsang squeeze for shape ≥ 1, boosted for < 1). *)

val beta : Rng.t -> a:float -> b:float -> float
(** Beta draw via two gammas. *)

val beta_log_pdf : a:float -> b:float -> float -> float
(** Log-density of Beta(a, b); [neg_infinity] outside (0, 1). *)

val bernoulli : Rng.t -> p:float -> bool

val binomial : Rng.t -> n:int -> p:float -> int
(** Sum of [n] Bernoulli(p) draws. *)

val categorical : Rng.t -> float array -> int
(** [categorical rng weights] draws index [i] with probability proportional
    to [weights.(i)].  Weights must be non-negative with a positive sum. *)

val poisson : Rng.t -> lambda:float -> int
(** Poisson draw (Knuth's method; adequate for the small rates used by the
    background-churn generator). *)

val pareto : Rng.t -> alpha:float -> x_min:float -> float
(** Pareto draw; used for heavy-tailed AS degree/customer-cone sizes. *)
