(** Ordinary least squares on (x, y) pairs.

    Heuristic M3 (§5.2.3) fits a line through the 40-bin announcement
    histogram of a Burst and scores the slope and relative change. *)

type fit = {
  slope : float;
  intercept : float;
  r2 : float;  (** Coefficient of determination; 0 when y is constant. *)
}

val fit : float array -> float array -> fit
(** [fit xs ys] fits [y = slope·x + intercept].  Requires equal lengths ≥ 2
    and non-constant [xs]. *)

val fit_heights : float array -> fit
(** [fit_heights ys] regresses against bin indices 0, 1, …  — the exact
    operation Fig. 10 performs on histogram heights. *)

val predict : fit -> float -> float

val relative_change : fit -> n:int -> float
(** Fitted relative change over [n] bins: (ŷ(n−1) − ŷ(0)) / ŷ(0), with a
    guard for a near-zero start.  Negative when announcements die out. *)
