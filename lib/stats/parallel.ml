(* Work-stealing task pool over OCaml 5 domains.

   Extracted from the inference driver so every subsystem that fans work out
   over domains (MCMC chains, per-prefix simulation shards, ...) shares one
   audited implementation.  Workers grab the next index off a shared atomic
   counter and write into disjoint result slots, so the output order is that
   of the task array regardless of [jobs]. *)

let run_tasks ~jobs tasks =
  if jobs < 1 then invalid_arg "Parallel.run_tasks: jobs must be positive";
  let n = Array.length tasks in
  let results = Array.make n None in
  let workers = min jobs n in
  if workers <= 1 then
    Array.iteri (fun i task -> results.(i) <- Some (task ())) tasks
  else begin
    let next = Atomic.make 0 in
    (* First task exception wins; once set, workers stop claiming new tasks
       (in-flight ones finish — cancellation is cooperative), every domain
       is joined, and the exception is re-raised on the caller with its
       original backtrace.  No domain is ever leaked mid-computation. *)
    let failed : (exn * Printexc.raw_backtrace) option Atomic.t =
      Atomic.make None
    in
    let worker () =
      let rec loop () =
        if Atomic.get failed = None then begin
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (match tasks.(i) () with
            | r -> results.(i) <- Some r
            | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                ignore (Atomic.compare_and_set failed None (Some (e, bt))));
            loop ()
          end
        end
      in
      loop ()
    in
    let domains = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    match Atomic.get failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end;
  Array.map Option.get results
