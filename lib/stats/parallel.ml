(* Work-stealing task pool over OCaml 5 domains.

   Extracted from the inference driver so every subsystem that fans work out
   over domains (MCMC chains, per-prefix simulation shards, ...) shares one
   audited implementation.  Workers grab the next index off a shared atomic
   counter and write into disjoint result slots, so the output order is that
   of the task array regardless of [jobs].

   Two execution paths share that claiming protocol:

   - a *persistent pool*: worker domains are spawned once (lazily, up to a
     cap) and reused across batches, parked on a condition variable between
     them.  Spawning a domain costs a stop-the-world synchronisation of
     every running domain, so spawn-per-call made repeated small fan-outs
     (per-interval inference, per-campaign simulation) pay that tax over
     and over.  Pool workers also run with a larger minor heap and a lazier
     major GC (see [tune_worker_gc]) — minor collections are stop-the-world
     across *all* domains in OCaml 5, so fewer, bigger collections is what
     makes chain-parallel sampling scale.
   - a *spawn fallback* used when the pool is already busy (a nested
     [run_tasks] from inside a pool task, or concurrent submitters such as
     service-mode campaign workers): fresh domains per call, exactly the
     historical behaviour.  This keeps every caller deadlock-free without
     serialising independent submitters.

   Both paths produce bit-identical results: scheduling only decides *who*
   runs a task, never *what* it computes, and results land in task order. *)

(* Larger per-domain minor heap (32 MB) + lazier major GC on pool workers.
   Minor collections synchronise every domain, so the default 256k-word
   nursery makes allocation-heavy samplers serialize on GC long before they
   saturate the cores. *)
let tune_worker_gc () =
  let g = Gc.get () in
  Gc.set
    {
      g with
      Gc.minor_heap_size = max g.Gc.minor_heap_size (1 lsl 22);
      space_overhead = max g.Gc.space_overhead 200;
    }

(* One submitted fan-out.  [run i] executes task [i] and never raises (task
   exceptions are captured inside the closure); [completed] counts tasks
   that finished *or were skipped* after a failure, so it always reaches
   [n] and the submitter can always wake up.  [seats] caps how many pool
   workers may join, enforcing the caller's [jobs] bound. *)
type batch = {
  run : int -> unit;
  n : int;
  next : int Atomic.t;
  completed : int Atomic.t;
  seats : int Atomic.t;
}

type pool = {
  max_workers : int;  (* upper bound on spawned workers, >= 0 *)
  submit : Mutex.t;   (* held by the submitter for a whole batch *)
  lock : Mutex.t;     (* guards [current] / [n_workers] and the conditions *)
  work : Condition.t; (* a new batch was published *)
  done_ : Condition.t; (* a batch just completed *)
  mutable current : batch option;
  mutable n_workers : int;
}

let rec take_seat seats =
  let s = Atomic.get seats in
  s > 0 && (Atomic.compare_and_set seats s (s - 1) || take_seat seats)

(* Claim-and-run until the batch's index counter is exhausted.  Called
   without [pool.lock]; the thread that completes the last task broadcasts
   [done_] under the lock so the submitter's check-then-wait cannot miss
   it. *)
let drain pool b =
  let rec claim () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < b.n then begin
      b.run i;
      let c = 1 + Atomic.fetch_and_add b.completed 1 in
      if c = b.n then begin
        Mutex.lock pool.lock;
        Condition.broadcast pool.done_;
        Mutex.unlock pool.lock
      end;
      claim ()
    end
  in
  claim ()

(* Pool workers live for the process: park between batches, join any newly
   published batch at most once (tracked by physical equality on the batch
   record), respecting its seat budget. *)
let worker pool () =
  tune_worker_gc ();
  let last = ref None in
  Mutex.lock pool.lock;
  let rec loop () =
    (match pool.current with
    | Some b
      when (match !last with Some l -> l != b | None -> true)
           && take_seat b.seats ->
        last := Some b;
        Mutex.unlock pool.lock;
        drain pool b;
        Mutex.lock pool.lock
    | _ -> Condition.wait pool.work pool.lock);
    loop ()
  in
  loop ()

let create ~workers =
  if workers <= 0 then invalid_arg "Parallel.create: workers must be positive";
  {
    max_workers = workers;
    submit = Mutex.create ();
    lock = Mutex.create ();
    work = Condition.create ();
    done_ = Condition.create ();
    current = None;
    n_workers = 0;
  }

(* The process-wide pool every [run_tasks] call shares.  Sized to the
   machine: more workers than cores only adds GC synchronisation, so an
   oversubscribed [jobs] runs at hardware width (results are unchanged —
   only the schedule differs).  On a single core this is zero workers and
   the submitter runs every task itself. *)
let shared_pool =
  lazy
    {
      max_workers = max 0 (Domain.recommended_domain_count () - 1);
      submit = Mutex.create ();
      lock = Mutex.create ();
      work = Condition.create ();
      done_ = Condition.create ();
      current = None;
      n_workers = 0;
    }

(* Called with [pool.lock] held.  Worker domains are deliberately never
   joined: they are process-lifetime infrastructure, parked on [work] when
   idle. *)
let ensure_workers pool target =
  while pool.n_workers < min target pool.max_workers do
    pool.n_workers <- pool.n_workers + 1;
    ignore (Domain.spawn (worker pool) : unit Domain.t)
  done

let worker_count pool =
  Mutex.lock pool.lock;
  let n = pool.n_workers in
  Mutex.unlock pool.lock;
  n

(* Requires [pool.submit] to be held by the caller. *)
let run_pooled pool ~workers tasks results =
  let n = Array.length tasks in
  let failed : (exn * Printexc.raw_backtrace) option Atomic.t =
    Atomic.make None
  in
  (* First task exception wins; once set, remaining claimed tasks are
     skipped (in-flight ones finish — cancellation is cooperative) but
     still counted, and the exception is re-raised on the submitter with
     its original backtrace. *)
  let run i =
    if Atomic.get failed = None then
      match tasks.(i) () with
      | r -> results.(i) <- Some r
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set failed None (Some (e, bt)))
  in
  let b =
    {
      run;
      n;
      next = Atomic.make 0;
      completed = Atomic.make 0;
      seats = Atomic.make (workers - 1);
    }
  in
  Mutex.lock pool.lock;
  ensure_workers pool (workers - 1);
  pool.current <- Some b;
  Condition.broadcast pool.work;
  Mutex.unlock pool.lock;
  drain pool b;
  Mutex.lock pool.lock;
  while Atomic.get b.completed < n do
    Condition.wait pool.done_ pool.lock
  done;
  pool.current <- None;
  Mutex.unlock pool.lock;
  match Atomic.get failed with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

(* Historical spawn-per-call path, kept as the fallback when the pool is
   busy.  Same claiming protocol, fresh domains, all joined before
   returning. *)
let run_spawn ~workers tasks results =
  let n = Array.length tasks in
  let next = Atomic.make 0 in
  let failed : (exn * Printexc.raw_backtrace) option Atomic.t =
    Atomic.make None
  in
  let worker ~tuned () =
    if tuned then tune_worker_gc ();
    let rec loop () =
      if Atomic.get failed = None then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match tasks.(i) () with
          | r -> results.(i) <- Some r
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set failed None (Some (e, bt))));
          loop ()
        end
      end
    in
    loop ()
  in
  let domains =
    List.init (workers - 1) (fun _ -> Domain.spawn (worker ~tuned:true))
  in
  worker ~tuned:false ();
  List.iter Domain.join domains;
  match Atomic.get failed with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let run pool ~jobs tasks =
  if jobs < 1 then invalid_arg "Parallel.run: jobs must be positive";
  let n = Array.length tasks in
  let results = Array.make n None in
  let workers = min jobs n in
  if workers <= 1 then
    Array.iteri (fun i task -> results.(i) <- Some (task ())) tasks
  else if Mutex.try_lock pool.submit then
    (* [try_lock] rather than [lock]: a nested call from inside a pool task
       would deadlock waiting for its own batch, and independent concurrent
       submitters shouldn't serialise — both take the spawn path instead. *)
    Fun.protect
      ~finally:(fun () -> Mutex.unlock pool.submit)
      (fun () -> run_pooled pool ~workers tasks results)
  else run_spawn ~workers tasks results;
  Array.map Option.get results

let run_tasks ~jobs tasks =
  if jobs < 1 then invalid_arg "Parallel.run_tasks: jobs must be positive";
  run (Lazy.force shared_pool) ~jobs tasks
