(* Work-stealing task pool over OCaml 5 domains.

   Extracted from the inference driver so every subsystem that fans work out
   over domains (MCMC chains, per-prefix simulation shards, ...) shares one
   audited implementation.  Workers grab the next index off a shared atomic
   counter and write into disjoint result slots, so the output order is that
   of the task array regardless of [jobs]. *)

let run_tasks ~jobs tasks =
  if jobs < 1 then invalid_arg "Parallel.run_tasks: jobs must be positive";
  let n = Array.length tasks in
  let results = Array.make n None in
  let workers = min jobs n in
  if workers <= 1 then
    Array.iteri (fun i task -> results.(i) <- Some (task ())) tasks
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (tasks.(i) ());
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains
  end;
  Array.map Option.get results
