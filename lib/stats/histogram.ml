type t = { lo : float; hi : float; counts : int array; total : int }

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  { lo; hi; counts = Array.make bins 0; total = 0 }

let bin_width t = (t.hi -. t.lo) /. float_of_int (Array.length t.counts)

let bin_of t x =
  let bins = Array.length t.counts in
  let i = int_of_float (Float.floor ((x -. t.lo) /. bin_width t)) in
  if i < 0 then 0 else if i >= bins then bins - 1 else i

let add t x =
  let counts = Array.copy t.counts in
  let i = bin_of t x in
  counts.(i) <- counts.(i) + 1;
  { t with counts; total = t.total + 1 }

let of_array ~lo ~hi ~bins xs =
  let t = create ~lo ~hi ~bins in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let i = bin_of t x in
      counts.(i) <- counts.(i) + 1)
    xs;
  { t with counts; total = Array.length xs }

let bin_center t i = t.lo +. ((float_of_int i +. 0.5) *. bin_width t)

let densities t =
  let w = bin_width t in
  let n = Stdlib.max t.total 1 in
  Array.map (fun c -> float_of_int c /. (float_of_int n *. w)) t.counts

let mode_bin t =
  let best = ref 0 in
  Array.iteri (fun i c -> if c > t.counts.(!best) then best := i) t.counts;
  !best

let heights t = Array.map float_of_int t.counts

let sparkline t =
  let ramp = [| " "; "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                "\xe2\x96\x87"; "\xe2\x96\x88" |] in
  let peak = Array.fold_left Stdlib.max 1 t.counts in
  let buf = Buffer.create (Array.length t.counts * 3) in
  Array.iter
    (fun c ->
      let level = c * (Array.length ramp - 1) / peak in
      Buffer.add_string buf ramp.(level))
    t.counts;
  Buffer.contents buf

let pp fmt t =
  Format.fprintf fmt "[%.3f,%.3f) n=%d %s" t.lo t.hi t.total (sparkline t)
