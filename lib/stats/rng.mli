(** Deterministic pseudo-random number generation.

    All stochastic components of this repository draw their randomness from an
    explicit [Rng.t] so that every simulation, campaign and MCMC run is
    reproducible bit-for-bit from a seed.  The generator is SplitMix64
    (Steele, Lea & Flood 2014): a tiny, fast, well-distributed 64-bit
    generator that also supports cheap splitting into independent streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed.  Equal seeds
    produce equal streams. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy evolves independently. *)

val state : t -> string
(** [state t] serializes the exact generator state as 16 lowercase hex
    characters.  Pairs with {!of_state} to freeze and later continue a
    stream bit-for-bit — the primitive the checkpoint/resume subsystem
    builds on, and handy on its own for replaying a failing chain from the
    state printed in a bug report. *)

val of_state : string -> t
(** [of_state s] rebuilds a generator from a {!state} string; the new
    generator produces exactly the continuation of the serialized stream.
    Raises [Invalid_argument] on anything but 16 hex characters. *)

val split : t -> t
(** [split t] derives a statistically independent child generator and
    advances [t].  Used to give subsystems their own streams so that adding
    draws in one subsystem does not perturb another. *)

val split_n : t -> int -> t array
(** [split_n t n] derives [n] independent child generators in one go —
    element [k] equals the k-th successive {!split}.  Pre-splitting a
    stream per task is what makes parallel execution order-independent:
    every worker owns its generator before any work starts. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float t] is uniform on [\[0, 1)] with 53-bit resolution. *)

val int : t -> int -> int
(** [int t bound] is uniform on [\[0, bound)].  [bound] must be positive. *)

val bool : t -> bool
(** Fair coin. *)

val range_float : t -> float -> float -> float
(** [range_float t lo hi] is uniform on [\[lo, hi)]. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement t k arr] returns [k] distinct elements chosen
    uniformly.  Raises [Invalid_argument] if [k > Array.length arr]. *)
