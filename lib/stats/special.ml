let lanczos_g = 7.0

let lanczos_coefficients =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  if x <= 0.0 then invalid_arg "Special.log_gamma: requires x > 0"
  else if x < 0.5 then
    (* Reflection keeps the Lanczos series in its accurate range. *)
    Float.log (Float.pi /. Float.sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let acc = ref lanczos_coefficients.(0) in
    for i = 1 to Array.length lanczos_coefficients - 1 do
      acc := !acc +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    let t = x +. lanczos_g +. 0.5 in
    (0.5 *. Float.log (2.0 *. Float.pi))
    +. (((x +. 0.5) *. Float.log t) -. t)
    +. Float.log !acc
  end

let log_beta a b = log_gamma a +. log_gamma b -. log_gamma (a +. b)

let log1mexp x =
  if x >= 0.0 then invalid_arg "Special.log1mexp: requires x < 0"
  else if x > -.Float.log 2.0 then Float.log (-.Float.expm1 x)
  else Float.log1p (-.Float.exp x)

let log_sum_exp xs =
  if Array.length xs = 0 then neg_infinity
  else begin
    let m = Array.fold_left Float.max neg_infinity xs in
    if m = neg_infinity then neg_infinity
    else begin
      let s = ref 0.0 in
      Array.iter (fun x -> s := !s +. Float.exp (x -. m)) xs;
      m +. Float.log !s
    end
  end

let erf x =
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let poly =
    t
    *. (0.254829592
       +. (t
           *. (-0.284496736
              +. (t
                  *. (1.421413741
                     +. (t *. (-1.453152027 +. (t *. 1.061405429))))))))
  in
  sign *. (1.0 -. (poly *. Float.exp (-.x *. x)))

let normal_cdf ?(mu = 0.0) ?(sigma = 1.0) x =
  0.5 *. (1.0 +. erf ((x -. mu) /. (sigma *. Float.sqrt 2.0)))
