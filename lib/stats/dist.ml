let uniform rng ~lo ~hi = Rng.range_float rng lo hi

let uniform_log_pdf ~lo ~hi x =
  if x < lo || x >= hi then neg_infinity else -.Float.log (hi -. lo)

let normal rng ~mu ~sigma =
  (* Box–Muller; draw both uniforms fresh to keep streams deterministic
     regardless of how callers interleave. *)
  let u1 = Float.max (Rng.float rng) 1e-300 in
  let u2 = Rng.float rng in
  let r = Float.sqrt (-2.0 *. Float.log u1) in
  mu +. (sigma *. r *. Float.cos (2.0 *. Float.pi *. u2))

let normal_log_pdf ~mu ~sigma x =
  let z = (x -. mu) /. sigma in
  (-0.5 *. z *. z)
  -. Float.log sigma
  -. (0.5 *. Float.log (2.0 *. Float.pi))

let exponential rng ~rate =
  if rate <= 0.0 then invalid_arg "Dist.exponential: rate must be positive";
  -.Float.log (Float.max (Rng.float rng) 1e-300) /. rate

let exponential_log_pdf ~rate x =
  if x < 0.0 then neg_infinity else Float.log rate -. (rate *. x)

let rec gamma rng ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then
    invalid_arg "Dist.gamma: shape and scale must be positive";
  if shape < 1.0 then begin
    (* Boost: X ~ Gamma(shape+1), then X * U^(1/shape). *)
    let x = gamma rng ~shape:(shape +. 1.0) ~scale in
    let u = Float.max (Rng.float rng) 1e-300 in
    x *. Float.pow u (1.0 /. shape)
  end
  else begin
    let d = shape -. (1.0 /. 3.0) in
    let c = 1.0 /. Float.sqrt (9.0 *. d) in
    let rec loop () =
      let x = normal rng ~mu:0.0 ~sigma:1.0 in
      let v = 1.0 +. (c *. x) in
      if v <= 0.0 then loop ()
      else begin
        let v3 = v *. v *. v in
        let u = Rng.float rng in
        if u < 1.0 -. (0.0331 *. x *. x *. x *. x) then d *. v3
        else if
          Float.log (Float.max u 1e-300)
          < (0.5 *. x *. x) +. (d *. (1.0 -. v3 +. Float.log v3))
        then d *. v3
        else loop ()
      end
    in
    scale *. loop ()
  end

let beta rng ~a ~b =
  let x = gamma rng ~shape:a ~scale:1.0 in
  let y = gamma rng ~shape:b ~scale:1.0 in
  x /. (x +. y)

let beta_log_pdf ~a ~b x =
  if x <= 0.0 || x >= 1.0 then neg_infinity
  else
    ((a -. 1.0) *. Float.log x)
    +. ((b -. 1.0) *. Float.log1p (-.x))
    -. Special.log_beta a b

let bernoulli rng ~p = Rng.float rng < p

let binomial rng ~n ~p =
  let count = ref 0 in
  for _ = 1 to n do
    if bernoulli rng ~p then incr count
  done;
  !count

let categorical rng weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Dist.categorical: weights must sum > 0";
  let u = Rng.float rng *. total in
  let rec find i acc =
    if i = Array.length weights - 1 then i
    else begin
      let acc = acc +. weights.(i) in
      if u < acc then i else find (i + 1) acc
    end
  in
  find 0 0.0

let poisson rng ~lambda =
  if lambda < 0.0 then invalid_arg "Dist.poisson: lambda must be >= 0";
  let limit = Float.exp (-.lambda) in
  let rec loop k p =
    let p = p *. Rng.float rng in
    if p <= limit then k else loop (k + 1) p
  in
  loop 0 1.0

let pareto rng ~alpha ~x_min =
  let u = Float.max (Rng.float rng) 1e-300 in
  x_min /. Float.pow u (1.0 /. alpha)
