(** Work-stealing task pool over OCaml 5 domains.

    The shared fan-out primitive: inference spreads MCMC chains over it and
    the simulator spreads per-prefix shards over it.  Tasks must be
    independent (each owns its mutable state; shared inputs are read-only)
    and at most [jobs] run at a time.

    Worker domains are {e persistent}: spawned lazily on first use, tuned
    for sampler workloads (32 MB minor heap, lazier major GC), then parked
    and reused across batches — spawning a domain forces a stop-the-world
    synchronisation, so per-call spawning made repeated fan-outs pay that
    cost every interval.  When a pool is already mid-batch (a nested call,
    or a concurrent submitter), execution transparently falls back to
    spawn-per-call.  Which path runs never affects the results. *)

type pool
(** A persistent set of worker domains plus the submission protocol. *)

val create : workers:int -> pool
(** [create ~workers] makes a dedicated pool that will spawn at most
    [workers] domains (lazily, on first demanding submission).  Raises
    [Invalid_argument] if [workers <= 0].  Workers are process-lifetime:
    there is no shutdown — parked domains cost nothing but memory. *)

val shared_pool : pool Lazy.t
(** The process-wide pool used by {!run_tasks}, sized to the hardware
    ([Domain.recommended_domain_count () - 1] workers — zero on a single
    core, where the submitter runs every task itself). *)

val worker_count : pool -> int
(** Workers spawned so far (grows on demand, never shrinks). *)

val run : pool -> jobs:int -> (unit -> 'a) array -> 'a array
(** [run pool ~jobs tasks] runs every task and returns their results in
    task-array order — the order (and, when tasks draw from pre-split RNG
    streams, the values) are identical for every [jobs] and for every
    pool.  At most [min jobs (Array.length tasks)] tasks run concurrently;
    a pool narrower than [jobs] runs at pool width, same results.  Raises
    [Invalid_argument] if [jobs < 1].

    If a task raises, no further tasks are started (in-flight ones run to
    completion — cancellation is cooperative), and the first exception is
    re-raised on the caller with its original backtrace.  The pool is left
    ready for the next batch. *)

val run_tasks : jobs:int -> (unit -> 'a) array -> 'a array
(** [run_tasks ~jobs tasks] is [run shared ~jobs tasks] on {!shared_pool} —
    the drop-in entry point virtually all callers want. *)
