(** Work-stealing task pool over OCaml 5 domains.

    The shared fan-out primitive: inference spreads MCMC chains over it and
    the simulator spreads per-prefix shards over it.  Tasks must be
    independent (each owns its mutable state; shared inputs are read-only)
    and are executed at most [jobs] at a time on [jobs - 1] spawned domains
    plus the caller. *)

val run_tasks : jobs:int -> (unit -> 'a) array -> 'a array
(** [run_tasks ~jobs tasks] runs every task and returns their results in
    task-array order — the order (and, when tasks draw from pre-split RNG
    streams, the values) are identical for every [jobs].  Raises
    [Invalid_argument] if [jobs < 1].

    If a task raises, no further tasks are claimed (in-flight ones run to
    completion — cancellation is cooperative), every spawned domain is
    joined, and the first exception is re-raised on the caller with its
    original backtrace.  Domains are never leaked. *)
