module Hdpi = Because_stats.Hdpi

type t = C1 | C2 | C3 | C4 | C5

let to_int = function C1 -> 1 | C2 -> 2 | C3 -> 3 | C4 -> 4 | C5 -> 5

let of_int = function
  | 1 -> C1
  | 2 -> C2
  | 3 -> C3
  | 4 -> C4
  | 5 -> C5
  | n -> invalid_arg ("Categorize.of_int: " ^ string_of_int n)

let compare a b = Int.compare (to_int a) (to_int b)
let max_ a b = if compare a b >= 0 then a else b
let pp fmt t = Format.fprintf fmt "Category %d" (to_int t)

let of_mean mean =
  if mean < 0.15 then C1
  else if mean < 0.3 then C2
  else if mean < 0.7 then C3
  else if mean < 0.85 then C4
  else C5

let of_hdpi (interval : Hdpi.t) =
  if interval.Hdpi.hi < 0.15 then C1
  else if interval.Hdpi.hi < 0.3 then C2
  else if interval.Hdpi.lo >= 0.85 then C5
  else if interval.Hdpi.lo >= 0.7 then C4
  else C3

let of_marginal (m : Posterior.marginal) =
  max_ (of_mean m.Posterior.mean) (of_hdpi m.Posterior.hdpi)

let damping = function C4 | C5 -> true | C1 | C2 | C3 -> false

let insufficient result ~min_support =
  let data = Infer.dataset result in
  List.filter_map
    (fun i ->
      if Tomography.support data i < min_support then
        Some (Tomography.node data i)
      else None)
    (List.init (Tomography.n_nodes data) Fun.id)

let assign ?(min_support = 1) result =
  let data = Infer.dataset result in
  let n = Tomography.n_nodes data in
  let per_sampler = Posterior.per_sampler result in
  (* No surviving sampler run means no posterior at all: everything is
     uncertain, not "highly likely clean". *)
  let best = Array.make n (if per_sampler = [] then C3 else C1) in
  List.iter
    (fun (_, marginals) ->
      Array.iteri
        (fun i m -> best.(i) <- max_ best.(i) (of_marginal m))
        marginals)
    per_sampler;
  List.init n (fun i ->
      let cat =
        if Tomography.support data i < min_support then C3 else best.(i)
      in
      (Tomography.node data i, cat))

let shares categories =
  let total = List.length categories in
  List.map
    (fun c ->
      let count =
        List.length (List.filter (fun x -> compare x c = 0) categories)
      in
      let share =
        if total = 0 then 0.0
        else float_of_int count /. float_of_int total
      in
      (c, count, share))
    [ C1; C2; C3; C4; C5 ]
