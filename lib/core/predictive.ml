module Chain = Because_mcmc.Chain

type path_prediction = {
  path_index : int;
  probability : float;
  label : bool;
}

type calibration_bin = {
  lo : float;
  hi : float;
  count : int;
  mean_predicted : float;
  observed_rate : float;
}

type t = {
  predictions : path_prediction list;
  brier : float;
  log_score : float;
  calibration : calibration_bin list;
}

(* Flat float record: accumulating through it does not box, and
   [Chain.value] avoids copying a row per draw. *)
type facc = { mutable v : float }

let path_probability data chain j =
  let nodes = Tomography.path data j in
  let n = Chain.length chain in
  let acc = { v = 0.0 } in
  for k = 0 to n - 1 do
    let q = { v = 1.0 } in
    for idx = 0 to Array.length nodes - 1 do
      q.v <- q.v *. (1.0 -. Chain.value chain k nodes.(idx))
    done;
    acc.v <- acc.v +. (1.0 -. q.v)
  done;
  acc.v /. float_of_int n

let evaluate ?(bins = 10) result =
  let data = Infer.dataset result in
  let chain = Infer.combined_chain result in
  let predictions =
    List.init (Tomography.n_paths data) (fun j ->
        {
          path_index = j;
          probability = path_probability data chain j;
          label = Tomography.label data j;
        })
  in
  let n = float_of_int (List.length predictions) in
  let brier =
    List.fold_left
      (fun acc p ->
        let y = if p.label then 1.0 else 0.0 in
        let d = p.probability -. y in
        acc +. (d *. d))
      0.0 predictions
    /. n
  in
  let log_score =
    List.fold_left
      (fun acc p ->
        let prob =
          Float.max 1e-9
            (if p.label then p.probability else 1.0 -. p.probability)
        in
        acc +. Float.log prob)
      0.0 predictions
    /. n
  in
  let calibration =
    List.init bins (fun b ->
        let lo = float_of_int b /. float_of_int bins in
        let hi = float_of_int (b + 1) /. float_of_int bins in
        let members =
          List.filter
            (fun p ->
              p.probability >= lo
              && (p.probability < hi || (b = bins - 1 && p.probability <= hi)))
            predictions
        in
        let count = List.length members in
        let mean xs f =
          if xs = [] then 0.0
          else
            List.fold_left (fun acc x -> acc +. f x) 0.0 xs
            /. float_of_int (List.length xs)
        in
        {
          lo;
          hi;
          count;
          mean_predicted = mean members (fun p -> p.probability);
          observed_rate =
            mean members (fun p -> if p.label then 1.0 else 0.0);
        })
  in
  { predictions; brier; log_score; calibration }

let pp_summary fmt t =
  Format.fprintf fmt "Brier %.4f, mean log score %.4f@." t.brier t.log_score;
  Format.fprintf fmt "%-14s %8s %12s %10s@." "bin" "paths" "predicted"
    "observed";
  List.iter
    (fun b ->
      if b.count > 0 then
        Format.fprintf fmt "[%.1f, %.1f)     %8d %11.2f %10.2f@." b.lo b.hi
          b.count b.mean_predicted b.observed_rate)
    t.calibration
