(** Posterior predictive checks — model criticism for the tomography fit.

    The paper's selling point is calibrated uncertainty; these checks
    quantify it.  For each observed path the posterior predictive probability
    that it shows the property is averaged over draws:

    P(path shows A ∣ D) = E_p[1 − ∏ᵢ qᵢ].

    Comparing these probabilities with the actual labels gives proper scoring
    rules (Brier, log) and a reliability table: a well-calibrated posterior
    puts ~x % of the paths predicted at x % into the positive class. *)

type path_prediction = {
  path_index : int;
  probability : float;  (** Posterior predictive P(shows property). *)
  label : bool;
}

type calibration_bin = {
  lo : float;
  hi : float;
  count : int;
  mean_predicted : float;
  observed_rate : float;  (** Fraction of paths in the bin labeled positive. *)
}

type t = {
  predictions : path_prediction list;
  brier : float;          (** Mean squared error of the probabilities; 0 is perfect. *)
  log_score : float;      (** Mean predictive log likelihood; higher is better. *)
  calibration : calibration_bin list;
}

val evaluate : ?bins:int -> Infer.result -> t
(** Score the pooled chains against the dataset's own labels ([bins]
    reliability buckets, default 10). *)

val path_probability :
  Tomography.t -> Because_mcmc.Chain.t -> int -> float
(** Posterior predictive probability for one path. *)

val pp_summary : Format.formatter -> t -> unit
