(** The binary network tomography dataset (§2.3 of the paper).

    Observations are [(AS path, shows-property)] pairs.  The dataset indexes
    every AS appearing on any path and precomputes, per AS, the list of paths
    through it — the incidence structure that makes single-site likelihood
    updates cheap. *)

open Because_bgp

type t

val of_observations : (Asn.t list * bool) list -> t
(** Build from labeled paths.  Duplicate observations are kept (each is an
    independent measurement); empty paths are rejected. *)

val n_nodes : t -> int
val n_paths : t -> int

val node : t -> int -> Asn.t
(** ASN of node index [i]. *)

val index_of : t -> Asn.t -> int option

val nodes : t -> Asn.t array

val path : t -> int -> int array
(** Node indices of path [j]. *)

val label : t -> int -> bool
(** [true] when path [j] shows the property (e.g. was labeled RFD). *)

val paths_through : t -> int -> int array
(** Indices of paths containing node [i]. *)

val support : t -> int -> int
(** Number of observations crossing node [i] — how much evidence the
    posterior for that AS rests on.  Fault-truncated feeds lower it. *)

val rfd_path_count : t -> int
(** Number of positive observations. *)

val positive_share : t -> float
(** Fraction of paths labeled positive (18 % in the paper's RFD data, 90 %
    in the ROV data). *)
