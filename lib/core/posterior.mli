(** Marginal posterior summaries (§5.1.2).

    For each AS the paper summarises the marginal distribution P(pᵢ ∣ D) by
    its mean and its 95 % Highest Posterior Density Interval; Fig. 11 plots
    the mean against a certainty score defined as 1 − HDPI width. *)

open Because_bgp

type marginal = {
  asn : Asn.t;
  index : int;
  mean : float;
  hdpi : Because_stats.Hdpi.t;
  certainty : float;  (** 1 − HDPI width. *)
  samples : float array;
}

val marginal :
  ?mass:float -> Tomography.t -> Because_mcmc.Chain.t -> int -> marginal
(** Summary of node [i] under one chain ([mass] defaults to 0.95). *)

val marginals :
  ?mass:float -> Tomography.t -> Because_mcmc.Chain.t -> marginal array
(** One summary per node. *)

val per_sampler :
  ?mass:float -> Infer.result -> (string * marginal array) list
(** [(sampler-name, summaries)] for each sampler run. *)

val combined : ?mass:float -> Infer.result -> marginal array
(** Summaries over all samplers' draws pooled. *)
