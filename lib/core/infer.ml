module Chain = Because_mcmc.Chain
module Metropolis = Because_mcmc.Metropolis
module Hmc = Because_mcmc.Hmc

type config = {
  n_samples : int;
  burn_in : int;
  thin : int;
  prior : Prior.t;
  node_priors : (Because_bgp.Asn.t * Prior.t) list;
  false_negative_rate : float;
  leapfrog_steps : int;
  run_mh : bool;
  run_hmc : bool;
}

let default_config =
  {
    n_samples = 1000;
    burn_in = 500;
    thin = 1;
    prior = Prior.default;
    node_priors = [];
    false_negative_rate = 0.0;
    leapfrog_steps = 12;
    run_mh = true;
    run_hmc = true;
  }

type sampler_run = { name : string; chain : Chain.t; acceptance : float }
type result = { model : Model.t; runs : sampler_run list }

let run ~rng ?(config = default_config) data =
  if not (config.run_mh || config.run_hmc) then
    invalid_arg "Infer.run: at least one sampler must be enabled";
  let model =
    Model.create ~prior:config.prior ~node_priors:config.node_priors
      ~false_negative_rate:config.false_negative_rate data
  in
  let target = Model.target model in
  let runs = ref [] in
  if config.run_mh then begin
    let r =
      Metropolis.run_single_site ~rng:(Because_stats.Rng.split rng)
        ~thin:config.thin ~n_samples:config.n_samples ~burn_in:config.burn_in
        target
    in
    runs :=
      { name = "MH"; chain = r.Metropolis.chain;
        acceptance = r.Metropolis.acceptance }
      :: !runs
  end;
  if config.run_hmc then begin
    let r =
      Hmc.run ~rng:(Because_stats.Rng.split rng)
        ~leapfrog_steps:config.leapfrog_steps ~thin:config.thin
        ~n_samples:config.n_samples ~burn_in:config.burn_in target
    in
    runs :=
      { name = "HMC"; chain = r.Hmc.chain; acceptance = r.Hmc.acceptance }
      :: !runs
  end;
  { model; runs = List.rev !runs }

let combined_chain result =
  match result.runs with
  | [] -> invalid_arg "Infer.combined_chain: no sampler runs"
  | first :: rest ->
      List.fold_left
        (fun acc run -> Chain.append acc run.chain)
        first.chain rest

let dataset result = Model.dataset result.model
