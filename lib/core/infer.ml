module Chain = Because_mcmc.Chain
module Metropolis = Because_mcmc.Metropolis
module Hmc = Because_mcmc.Hmc
module Diagnostics = Because_mcmc.Diagnostics
module Rng = Because_stats.Rng
module Target = Because_mcmc.Target
module Tel = Because_telemetry.Registry
module Supervise = Because_recover.Supervise
module Chain_ckpt = Because_recover.Chain_ckpt
module Sampler_state = Because_recover.Sampler_state

type config = {
  n_samples : int;
  burn_in : int;
  thin : int;
  prior : Prior.t;
  node_priors : (Because_bgp.Asn.t * Prior.t) list;
  false_negative_rate : float;
  leapfrog_steps : int;
  run_mh : bool;
  run_hmc : bool;
  max_restarts : int;
  retry_backoff_s : float;
  n_chains : int;
  jobs : int;
  telemetry : Tel.t;
  supervise : Supervise.budget;
  checkpoint : Chain_ckpt.hooks option;
  init : float array option;
}

let default_config =
  {
    n_samples = 1000;
    burn_in = 500;
    thin = 1;
    prior = Prior.default;
    node_priors = [];
    false_negative_rate = 0.0;
    leapfrog_steps = 12;
    run_mh = true;
    run_hmc = true;
    max_restarts = 2;
    retry_backoff_s = 0.01;
    n_chains = 1;
    jobs = 1;
    telemetry = Tel.disabled;
    supervise = Supervise.unlimited;
    checkpoint = None;
    init = None;
  }

type sampler_run = {
  name : string;
  chain_index : int;
  chain : Chain.t;
  acceptance : float;
}

type result = {
  model : Model.t;
  runs : sampler_run list;
  warnings : string list;
  aborted : string list;
}

let chain_healthy chain = Chain.for_all_values Float.is_finite chain

(* Attempt 0 runs on the task's own pre-split generator, so for the default
   single-chain configuration a healthy run consumes exactly the one
   [Rng.split] per sampler the sequential code always did; retries split
   fresh streams off the task generator only after a failure, never touching
   any other task's stream.

   Resume replays the split discipline exactly: a snapshot taken during
   attempt [k] records the [k] warnings of the earlier failed attempts, so
   the resumed process consumes the same [k] splits off the task generator
   before continuing — later retries therefore see the very streams the
   uninterrupted run would have given them, and even a
   fail-after-resume trajectory stays bit-for-bit identical. *)
let run_with_restarts ~config ~rng ~name ~chain_index sample =
  let max_restarts = config.max_restarts in
  let key = Printf.sprintf "%s.chain%d" name chain_index in
  let final_sweep = config.burn_in + (config.n_samples * config.thin) in
  let saved =
    match config.checkpoint with
    | None -> None
    | Some hooks -> hooks.Chain_ckpt.load ~key
  in
  (* [warnings] accumulates newest-first, so its length is always the
     current attempt index — also the invariant the snapshot relies on. *)
  let resume0, warnings0 =
    match saved with
    | Some sv -> (Some sv.Chain_ckpt.state, sv.Chain_ckpt.prior_warnings)
    | None -> (None, [])
  in
  let k0 = List.length warnings0 in
  for _ = 2 to k0 do
    ignore (Rng.split rng)
  done;
  let rec attempt k warnings ~resume =
    let attempt_rng = if k = 0 then rng else Rng.split rng in
    (* Backoff only before a genuinely fresh retry — a resumed attempt
       already paid it in its first life.  Wall-clock only; never touches
       any RNG stream. *)
    if k > 0 && resume = None then
      Supervise.wait_backoff ~attempt:k ~base_s:config.retry_backoff_s;
    let token = Supervise.start ~label:key config.supervise in
    (* Every chain gets a control callback so a process-wide drain request
       (SIGTERM, service shutdown) reaches it at the next sweep boundary.
       With checkpoint hooks the drain writes one final snapshot first —
       resuming loses no work; without them it just stops.  The drain check
       is an atomic load and never touches an RNG stream, so results stay
       bit-for-bit identical to the control-free path. *)
    let control =
      match config.checkpoint with
      | None ->
          if Supervise.is_unlimited config.supervise then
            Some (fun ~sweep:_ ~state:_ -> Supervise.check_drain ())
          else
            Some
              (fun ~sweep:_ ~state:_ ->
                Supervise.check_drain ();
                Supervise.tick token)
      | Some hooks ->
          let save_ctl =
            Chain_ckpt.make_control hooks ~key ~final_sweep
              ~prior_warnings:warnings
          in
          Some
            (fun ~sweep ~state ->
              if Supervise.draining () then begin
                Chain_ckpt.save_now hooks ~key ~prior_warnings:warnings
                  ~sweep ~state;
                raise Supervise.Drained
              end;
              Supervise.tick token;
              save_ctl ~sweep ~state)
    in
    let outcome =
      match sample attempt_rng ~resume ~control with
      | chain, acceptance ->
          if chain_healthy chain then `Ok (chain, acceptance)
          else `Diverged "chain contains non-finite draws"
      | exception Failure msg -> `Diverged msg
      | exception Supervise.Aborted reason -> `Aborted reason
    in
    match outcome with
    | `Ok (chain, acceptance) ->
        (Some { name; chain_index; chain; acceptance }, List.rev warnings, None)
    | `Diverged msg ->
        let warnings =
          Printf.sprintf "%s attempt %d/%d diverged: %s" name (k + 1)
            (max_restarts + 1) msg
          :: warnings
        in
        if k >= max_restarts then
          ( None,
            List.rev
              (Printf.sprintf "%s disabled: no healthy chain in %d attempts"
                 name (max_restarts + 1)
              :: warnings),
            None )
        else attempt (k + 1) warnings ~resume:None
    | `Aborted reason ->
        (* Budget exhaustion is terminal, not a divergence: retrying would
           burn the same budget again.  The caller degrades gracefully. *)
        ( None,
          List.rev
            (Printf.sprintf "%s disabled: %s" name reason :: warnings),
          Some reason )
  in
  attempt k0 warnings0 ~resume:resume0

(* Work-stealing over a fixed task array (shared with the simulator's shard
   driver): result order — and, thanks to per-task pre-split generators, the
   output *values* — are identical for every [jobs]. *)
let run_tasks ~jobs tasks = Because_stats.Parallel.run_tasks ~jobs tasks

let r_hat result =
  let groups =
    List.fold_left
      (fun acc run ->
        match List.assoc_opt run.name acc with
        | Some chains ->
            (run.name, run.chain :: chains)
            :: List.remove_assoc run.name acc
        | None -> (run.name, [ run.chain ]) :: acc)
      [] result.runs
  in
  List.rev_map
    (fun (name, chains_rev) ->
      let chains = List.rev chains_rev in
      let dim = Chain.dim (List.hd chains) in
      let many = Array.of_list chains in
      let worst = ref neg_infinity in
      for i = 0 to dim - 1 do
        (* The [_coord] diagnostics walk the chains' flat storage directly —
           bit-identical to extracting each marginal, without the per-
           coordinate array materialisation. *)
        let v =
          match chains with
          | [ only ] -> Diagnostics.split_r_hat_coord only i
          | _ -> Diagnostics.r_hat_coord many i
        in
        if v > !worst then worst := v
      done;
      (name, !worst))
    groups

(* Worst R-hat over every sampler group and coordinate when each chain is
   truncated to its first [n] retained draws. *)
let worst_r_hat_at runs n =
  let groups =
    List.fold_left
      (fun acc run ->
        let c = Chain.prefix run.chain n in
        match List.assoc_opt run.name acc with
        | Some chains -> (run.name, c :: chains) :: List.remove_assoc run.name acc
        | None -> (run.name, [ c ]) :: acc)
      [] runs
  in
  List.fold_left
    (fun worst (_, chains) ->
      let dim = Chain.dim (List.hd chains) in
      let many = Array.of_list (List.rev chains) in
      let w = ref worst in
      for i = 0 to dim - 1 do
        let v =
          match Array.length many with
          | 1 -> Diagnostics.split_r_hat_coord many.(0) i
          | _ -> Diagnostics.r_hat_coord many i
        in
        if v > !w then w := v
      done;
      !w)
    neg_infinity groups

let gate_points = 16

let gate_draws ?(threshold = 1.1) result =
  match result.runs with
  | [] -> None
  | runs ->
      let min_len =
        List.fold_left (fun acc r -> min acc (Chain.length r.chain)) max_int
          runs
      in
      if min_len < 8 then None
      else begin
        (* Scan a coarse grid of prefix lengths (smallest first) instead of
           every length: the gate is a measurement, not a stopping rule, so
           grid resolution only quantises the reported saving. *)
        let grid =
          List.init gate_points (fun k ->
              max 8 (min_len * (k + 1) / gate_points))
          |> List.sort_uniq compare
        in
        List.find_opt (fun n -> worst_r_hat_at runs n <= threshold) grid
      end

(* Runs inside the worker domain, so the counters land in that domain's
   telemetry shard without contention.  Work counters are exact replays of
   the sampler's loop structure — sweeps and per-sweep evaluation counts are
   fixed by the config, not by the chain's trajectory. *)
let flush_chain_telemetry reg config ~target ~name ~chain_index outcome =
  let run_opt, warnings, aborted = outcome in
  (match aborted with
  | Some _ -> Tel.Counter.add (Tel.Counter.v reg "mcmc.aborts") 1
  | None -> ());
  let sweeps = config.burn_in + (config.n_samples * config.thin) in
  Tel.Counter.add (Tel.Counter.v reg "mcmc.sweeps") sweeps;
  let dim = target.Target.dim in
  (if name = "MH" then
     let counter_name =
       if target.Target.make_cache <> None then "mcmc.mh.deltas_cached"
       else if target.Target.log_density_delta <> None then
         "mcmc.mh.deltas_stateless"
       else "mcmc.mh.deltas_full"
     in
     Tel.Counter.add (Tel.Counter.v reg counter_name) (dim * sweeps)
   else
     Tel.Counter.add
       (Tel.Counter.v reg "mcmc.hmc.grad_evals")
       (config.leapfrog_steps * sweeps));
  match run_opt with
  | Some r ->
      Tel.Gauge.set
        (Tel.Gauge.v reg
           (Printf.sprintf "mcmc.%s.chain%d.acceptance" name chain_index))
        r.acceptance;
      (* Each warning of a healthy run is one diverged attempt = one
         restart. *)
      Tel.Counter.add (Tel.Counter.v reg "mcmc.restarts")
        (List.length warnings)
  | None ->
      (* A dropped chain logs one warning per attempt plus a "disabled"
         note; restarts are the attempts beyond the first.  An aborted
         chain logs the disabled note without a per-attempt warning for
         its final (interrupted) attempt. *)
      let extra_notes = if aborted = None then 2 else 1 in
      Tel.Counter.add (Tel.Counter.v reg "mcmc.restarts")
        (max 0 (List.length warnings - extra_notes))

let run ~rng ?(config = default_config) data =
  if not (config.run_mh || config.run_hmc) then
    invalid_arg "Infer.run: at least one sampler must be enabled";
  if config.max_restarts < 0 then
    invalid_arg "Infer.run: max_restarts must be non-negative";
  if config.n_chains < 1 then
    invalid_arg "Infer.run: n_chains must be positive";
  if config.jobs < 1 then invalid_arg "Infer.run: jobs must be positive";
  if config.thin < 1 then invalid_arg "Infer.run: thin must be positive";
  if config.retry_backoff_s < 0.0 then
    invalid_arg "Infer.run: retry_backoff_s must be non-negative";
  let model =
    Model.create ~prior:config.prior ~node_priors:config.node_priors
      ~false_negative_rate:config.false_negative_rate data
  in
  let target = Model.target model in
  (* The model and target are immutable and shared read-only across domains;
     all mutable sampler state (including the likelihood cache) is created
     inside each sampler call. *)
  (* Each spec adapts the generic resume/control plumbing to its sampler's
     own state type.  A saved state for a different sampler (possible only
     through key collision in a hand-edited store) is ignored rather than
     trusted. *)
  let sampler_specs =
    (if config.run_mh then
       [ ( "MH",
           fun sub ~resume ~control ->
             let resume =
               match resume with
               | Some (Sampler_state.Mh s) -> Some s
               | Some _ | None -> None
             in
             let control =
               Option.map
                 (fun f ~sweep ~state ->
                   f ~sweep ~state:(fun () -> Sampler_state.Mh (state ())))
                 control
             in
             let r =
               Metropolis.run_single_site ~rng:sub ~thin:config.thin ?resume
                 ?control ?init:config.init ~n_samples:config.n_samples
                 ~burn_in:config.burn_in target
             in
             (r.Metropolis.chain, r.Metropolis.acceptance) ) ]
     else [])
    @
    if config.run_hmc then
      [ ( "HMC",
          fun sub ~resume ~control ->
            let resume =
              match resume with
              | Some (Sampler_state.Hmc s) -> Some s
              | Some _ | None -> None
            in
            let control =
              Option.map
                (fun f ~sweep ~state ->
                  f ~sweep ~state:(fun () -> Sampler_state.Hmc (state ())))
                control
            in
            let r =
              Hmc.run ~rng:sub ~leapfrog_steps:config.leapfrog_steps
                ~thin:config.thin ?resume ?control ?init:config.init
                ~n_samples:config.n_samples ~burn_in:config.burn_in target
            in
            (r.Hmc.chain, r.Hmc.acceptance) ) ]
    else []
  in
  let specs =
    List.concat_map
      (fun (name, sample) ->
        List.init config.n_chains (fun k -> (name, k, sample)))
      sampler_specs
  in
  (* All task generators are split off the caller's stream before anything
     runs: execution order cannot perturb them. *)
  let task_rngs = Rng.split_n rng (List.length specs) in
  let tasks =
    List.mapi
      (fun idx (name, chain_index, sample) ->
        fun () ->
          Tel.Span.with_ config.telemetry
            ~name:(Printf.sprintf "infer.%s.chain%d" name chain_index)
            (fun () ->
              let outcome =
                run_with_restarts ~config ~rng:task_rngs.(idx) ~name
                  ~chain_index sample
              in
              if Tel.is_enabled config.telemetry then
                flush_chain_telemetry config.telemetry config ~target ~name
                  ~chain_index outcome;
              outcome))
      specs
  in
  let outcomes = run_tasks ~jobs:config.jobs (Array.of_list tasks) in
  let runs =
    List.filter_map (fun (run, _, _) -> run) (Array.to_list outcomes)
  in
  let warnings =
    List.concat_map (fun (_, ws, _) -> ws) (Array.to_list outcomes)
  in
  let aborted =
    List.filter_map (fun (_, _, ab) -> ab) (Array.to_list outcomes)
  in
  let result = { model; runs; warnings; aborted } in
  if Tel.is_enabled config.telemetry && runs <> [] then
    List.iter
      (fun (name, v) ->
        Tel.Gauge.set (Tel.Gauge.v config.telemetry ("mcmc.rhat." ^ name)) v)
      (r_hat result);
  result

let combined_chain result =
  match result.runs with
  | [] -> invalid_arg "Infer.combined_chain: no sampler runs"
  | runs -> Chain.concat (List.map (fun run -> run.chain) runs)

let dataset result = Model.dataset result.model
