module Chain = Because_mcmc.Chain
module Metropolis = Because_mcmc.Metropolis
module Hmc = Because_mcmc.Hmc

type config = {
  n_samples : int;
  burn_in : int;
  thin : int;
  prior : Prior.t;
  node_priors : (Because_bgp.Asn.t * Prior.t) list;
  false_negative_rate : float;
  leapfrog_steps : int;
  run_mh : bool;
  run_hmc : bool;
  max_restarts : int;
}

let default_config =
  {
    n_samples = 1000;
    burn_in = 500;
    thin = 1;
    prior = Prior.default;
    node_priors = [];
    false_negative_rate = 0.0;
    leapfrog_steps = 12;
    run_mh = true;
    run_hmc = true;
    max_restarts = 2;
  }

type sampler_run = { name : string; chain : Chain.t; acceptance : float }

type result = {
  model : Model.t;
  runs : sampler_run list;
  warnings : string list;
}

let chain_healthy chain =
  let healthy = ref true in
  for k = 0 to Chain.length chain - 1 do
    Array.iter
      (fun v -> if not (Float.is_finite v) then healthy := false)
      (Chain.get chain k)
  done;
  !healthy

(* Attempt 0 consumes exactly the [Rng.split] the pre-restart code did, so a
   healthy first run leaves the caller's stream untouched; retries draw fresh
   splits only after a failure. *)
let run_with_restarts ~rng ~max_restarts ~name sample =
  let rec attempt k warnings =
    let outcome =
      match sample (Because_stats.Rng.split rng) with
      | chain, acceptance ->
          if chain_healthy chain then Ok (chain, acceptance)
          else Error "chain contains non-finite draws"
      | exception Failure msg -> Error msg
    in
    match outcome with
    | Ok (chain, acceptance) ->
        (Some { name; chain; acceptance }, List.rev warnings)
    | Error msg ->
        let warnings =
          Printf.sprintf "%s attempt %d/%d diverged: %s" name (k + 1)
            (max_restarts + 1) msg
          :: warnings
        in
        if k >= max_restarts then
          ( None,
            List.rev
              (Printf.sprintf "%s disabled: no healthy chain in %d attempts"
                 name (max_restarts + 1)
              :: warnings) )
        else attempt (k + 1) warnings
  in
  attempt 0 []

let run ~rng ?(config = default_config) data =
  if not (config.run_mh || config.run_hmc) then
    invalid_arg "Infer.run: at least one sampler must be enabled";
  if config.max_restarts < 0 then
    invalid_arg "Infer.run: max_restarts must be non-negative";
  let model =
    Model.create ~prior:config.prior ~node_priors:config.node_priors
      ~false_negative_rate:config.false_negative_rate data
  in
  let target = Model.target model in
  let runs = ref [] in
  let warnings = ref [] in
  let record (run_opt, ws) =
    warnings := !warnings @ ws;
    match run_opt with Some r -> runs := r :: !runs | None -> ()
  in
  if config.run_mh then
    record
      (run_with_restarts ~rng ~max_restarts:config.max_restarts ~name:"MH"
         (fun sub ->
           let r =
             Metropolis.run_single_site ~rng:sub ~thin:config.thin
               ~n_samples:config.n_samples ~burn_in:config.burn_in target
           in
           (r.Metropolis.chain, r.Metropolis.acceptance)));
  if config.run_hmc then
    record
      (run_with_restarts ~rng ~max_restarts:config.max_restarts ~name:"HMC"
         (fun sub ->
           let r =
             Hmc.run ~rng:sub ~leapfrog_steps:config.leapfrog_steps
               ~thin:config.thin ~n_samples:config.n_samples
               ~burn_in:config.burn_in target
           in
           (r.Hmc.chain, r.Hmc.acceptance)));
  { model; runs = List.rev !runs; warnings = !warnings }

let combined_chain result =
  match result.runs with
  | [] -> invalid_arg "Infer.combined_chain: no sampler runs"
  | first :: rest ->
      List.fold_left
        (fun acc run -> Chain.append acc run.chain)
        first.chain rest

let dataset result = Model.dataset result.model
