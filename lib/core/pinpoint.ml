open Because_bgp
module Chain = Because_mcmc.Chain

type promotion = {
  asn : Asn.t;
  node : int;
  path_index : int;
  posterior_prob : float;
}

let default_threshold = 0.8
let default_min_support = 2

let promotions_nonempty ~threshold ~min_support result ~categories =
  let data = Infer.dataset result in
  let chain = Infer.combined_chain result in
  let n_draws = Chain.length chain in
  let category_of = Hashtbl.create 64 in
  List.iter
    (fun (asn, c) -> Hashtbl.replace category_of asn c)
    categories;
  let flagged i =
    match Hashtbl.find_opt category_of (Tomography.node data i) with
    | Some c -> Categorize.damping c
    | None -> false
  in
  (* Per candidate node: the unexplained RFD paths on which it is the most
     likely damper.  Promotion needs [min_support] independent paths — one
     noisy label must not be able to promote an AS on its own. *)
  let support : (int, (int * float) list) Hashtbl.t = Hashtbl.create 8 in
  for j = 0 to Tomography.n_paths data - 1 do
    if Tomography.label data j then begin
      let nodes = Tomography.path data j in
      if not (Array.exists flagged nodes) then begin
        (* Count, per node on the path, how often it is the draw's argmax.
           [Chain.value] reads the flat storage in place — no per-draw row
           copy in this O(draws × path length) loop. *)
        let wins = Array.make (Array.length nodes) 0 in
        for k = 0 to n_draws - 1 do
          let best = ref 0 in
          for idx = 0 to Array.length nodes - 1 do
            if
              Chain.value chain k nodes.(idx)
              > Chain.value chain k nodes.(!best)
            then best := idx
          done;
          wins.(!best) <- wins.(!best) + 1
        done;
        Array.iteri
          (fun idx node ->
            let prob = float_of_int wins.(idx) /. float_of_int n_draws in
            if prob > threshold then begin
              let existing =
                Option.value (Hashtbl.find_opt support node) ~default:[]
              in
              Hashtbl.replace support node ((j, prob) :: existing)
            end)
          nodes
      end
    end
  done;
  let results =
    Hashtbl.fold
      (fun node paths acc ->
        if List.length paths >= min_support then begin
          let path_index, posterior_prob =
            List.fold_left
              (fun (bj, bp) (j, p) -> if p > bp then (j, p) else (bj, bp))
              (List.hd paths) (List.tl paths)
          in
          { asn = Tomography.node data node; node; path_index;
            posterior_prob }
          :: acc
        end
        else acc)
      support []
  in
  List.sort (fun a b -> Int.compare a.node b.node) results

let promotions ?(threshold = default_threshold)
    ?(min_support = default_min_support) result ~categories =
  (* No surviving sampler run means no pooled chain to pinpoint from. *)
  if result.Infer.runs = [] then []
  else promotions_nonempty ~threshold ~min_support result ~categories

let apply categories promotions =
  let promoted =
    List.fold_left
      (fun acc p -> Asn.Set.add p.asn acc)
      Asn.Set.empty promotions
  in
  List.map
    (fun (asn, c) ->
      if Asn.Set.mem asn promoted then (asn, Categorize.max_ c Categorize.C4)
      else (asn, c))
    categories

let assign_with_pinpointing ?threshold ?min_support result =
  let categories = Categorize.assign result in
  let promos = promotions ?threshold ?min_support result ~categories in
  apply categories promos
