(** Posterior sampling orchestration: run Metropolis–Hastings and Hamiltonian
    Monte Carlo on a tomography dataset and collect their chains.

    The paper runs both samplers and, when categorising, keeps the highest
    flag either assigns — so both are enabled by default. *)

type config = {
  n_samples : int;       (** Retained draws per sampler. *)
  burn_in : int;         (** Adaptation iterations discarded per sampler. *)
  thin : int;
  prior : Prior.t;
  node_priors : (Because_bgp.Asn.t * Prior.t) list;
  false_negative_rate : float;
      (** §7.2 error-aware likelihood; 0 recovers the base model. *)
  leapfrog_steps : int;  (** HMC trajectory length. *)
  run_mh : bool;
  run_hmc : bool;
}

val default_config : config
(** 1000 samples after 500 burn-in, no thinning, {!Prior.default}, 12
    leapfrog steps, both samplers. *)

type sampler_run = {
  name : string;
  chain : Because_mcmc.Chain.t;
  acceptance : float;
}

type result = {
  model : Model.t;
  runs : sampler_run list;  (** One entry per enabled sampler. *)
}

val run :
  rng:Because_stats.Rng.t -> ?config:config -> Tomography.t -> result

val combined_chain : result -> Because_mcmc.Chain.t
(** All retained draws across samplers appended (used for point estimates
    where sampler identity does not matter, e.g. pinpointing). *)

val dataset : result -> Tomography.t
