(** Posterior sampling orchestration: run Metropolis–Hastings and Hamiltonian
    Monte Carlo on a tomography dataset and collect their chains.

    The paper runs both samplers and, when categorising, keeps the highest
    flag either assigns — so both are enabled by default. *)

type config = {
  n_samples : int;       (** Retained draws per sampler. *)
  burn_in : int;         (** Adaptation iterations discarded per sampler. *)
  thin : int;
  prior : Prior.t;
  node_priors : (Because_bgp.Asn.t * Prior.t) list;
  false_negative_rate : float;
      (** §7.2 error-aware likelihood; 0 recovers the base model. *)
  leapfrog_steps : int;  (** HMC trajectory length. *)
  run_mh : bool;
  run_hmc : bool;
  max_restarts : int;
      (** Automatic restarts (fresh RNG split each) granted to a sampler
          whose chain diverges or raises on a non-finite log-density. *)
}

val default_config : config
(** 1000 samples after 500 burn-in, no thinning, {!Prior.default}, 12
    leapfrog steps, both samplers, 2 restarts. *)

type sampler_run = {
  name : string;
  chain : Because_mcmc.Chain.t;
  acceptance : float;
}

type result = {
  model : Model.t;
  runs : sampler_run list;
      (** One entry per enabled sampler that produced a healthy chain; a
          sampler exhausting its restarts is dropped (see [warnings]). *)
  warnings : string list;
      (** Human-readable notes on diverged attempts and disabled samplers;
          [\[\]] on a clean run. *)
}

val run :
  rng:Because_stats.Rng.t -> ?config:config -> Tomography.t -> result
(** Never raises on sampler divergence: each enabled sampler gets
    [1 + max_restarts] attempts (each from a fresh RNG split, so a healthy
    first attempt consumes exactly one split as before) and is skipped with
    a warning if none yields an all-finite chain.  [runs] can therefore be
    empty; downstream consumers must treat that as "no posterior" rather
    than call {!combined_chain}. *)

val combined_chain : result -> Because_mcmc.Chain.t
(** All retained draws across samplers appended (used for point estimates
    where sampler identity does not matter, e.g. pinpointing). *)

val dataset : result -> Tomography.t
