(** Posterior sampling orchestration: run Metropolis–Hastings and Hamiltonian
    Monte Carlo on a tomography dataset and collect their chains.

    The paper runs both samplers and, when categorising, keeps the highest
    flag either assigns — so both are enabled by default.

    Sampling work is organised as independent tasks (one per sampler per
    chain), each owning a generator split off the caller's stream before
    anything executes.  [jobs > 1] fans the tasks out over that many OCaml
    domains; because the streams are pre-split and results land in fixed
    slots, the output is bit-for-bit identical for every [jobs] value. *)

type config = {
  n_samples : int;       (** Retained draws per sampler chain. *)
  burn_in : int;         (** Adaptation iterations discarded per chain. *)
  thin : int;
  prior : Prior.t;
  node_priors : (Because_bgp.Asn.t * Prior.t) list;
  false_negative_rate : float;
      (** §7.2 error-aware likelihood; 0 recovers the base model. *)
  leapfrog_steps : int;  (** HMC trajectory length. *)
  run_mh : bool;
  run_hmc : bool;
  max_restarts : int;
      (** Automatic restarts (fresh RNG split each) granted to a chain
          whose run diverges or raises on a non-finite log-density. *)
  retry_backoff_s : float;
      (** Base of the exponential wall-clock backoff before restart [k]
          (delay = base·2ᵏ, capped at 1 s).  Pure wall time — never touches
          an RNG stream, so results stay deterministic.  0 disables. *)
  n_chains : int;
      (** Independent chains per enabled sampler.  1 (the default)
          reproduces the single-chain behaviour exactly; more chains feed
          the cross-chain {!r_hat} diagnostic. *)
  jobs : int;
      (** Worker domains the sampler tasks are spread over.  1 (the
          default) runs everything on the calling domain.  Any value
          produces bit-for-bit identical results. *)
  telemetry : Because_telemetry.Registry.t;
      (** Observability sink.  Disabled (the default) costs one branch per
          record site and changes nothing; enabled, each chain task records
          a span, per-chain acceptance gauges, sampler work counters
          ([mcmc.sweeps], [mcmc.mh.deltas_*], [mcmc.hmc.grad_evals],
          [mcmc.restarts], [mcmc.aborts]) and — after the result is
          assembled — worst-case [mcmc.rhat.<sampler>] gauges.  Telemetry
          never touches the RNG streams, so results are identical either
          way. *)
  supervise : Because_recover.Supervise.budget;
      (** Per-chain wall-clock/sweep budget, enforced cooperatively after
          every sweep inside the worker domain.  A chain that crosses a
          limit is terminated and reported in [result.aborted] — the run
          itself completes (degraded), it does not fail.  Unlimited (the
          default) adds no per-sweep work at all. *)
  checkpoint : Because_recover.Chain_ckpt.hooks option;
      (** Per-chain durable snapshots.  When set, each chain loads its last
          snapshot before starting (continuing mid-stream, bit-for-bit) and
          saves on the hooks' cadence plus once at its final sweep.  [None]
          (the default) is the historical zero-overhead path. *)
  init : float array option;
      (** Starting point handed to every chain (original-space, one value
          per dataset node).  [None] (the default) keeps each sampler's own
          initializer.  Streaming epochs warm-start here from the previous
          epoch's posterior means. *)
}

val default_config : config
(** 1000 samples after 500 burn-in, no thinning, {!Prior.default}, 12
    leapfrog steps, both samplers, 2 restarts, 1 chain each, 1 job,
    telemetry disabled. *)

type sampler_run = {
  name : string;          (** ["MH"] or ["HMC"]. *)
  chain_index : int;      (** 0 .. n_chains-1 within that sampler. *)
  chain : Because_mcmc.Chain.t;
  acceptance : float;
}

type result = {
  model : Model.t;
  runs : sampler_run list;
      (** One entry per sampler chain that produced a healthy run, in
          deterministic (sampler, chain) order; a chain exhausting its
          restarts is dropped (see [warnings]). *)
  warnings : string list;
      (** Human-readable notes on diverged attempts and disabled chains;
          [\[\]] on a clean run. *)
  aborted : string list;
      (** One entry per chain terminated by the supervision budget
          ([config.supervise]).  Non-empty means the posterior is partial:
          downstream consumers should degrade to heuristic localization and
          report a [Degraded] outcome. *)
}

val run :
  rng:Because_stats.Rng.t -> ?config:config -> Tomography.t -> result
(** Never raises on sampler divergence: each chain gets [1 + max_restarts]
    attempts and is skipped with a warning if none yields an all-finite
    chain.  [runs] can therefore be empty; downstream consumers must treat
    that as "no posterior" rather than call {!combined_chain}.

    Determinism: the per-task generators are split off [rng] in fixed task
    order before any sampling starts, so the result — chains, acceptance
    rates and warnings alike — does not depend on [config.jobs].  With the
    default single-chain config a healthy run consumes exactly one
    [Rng.split] per enabled sampler, as the sequential implementation always
    did. *)

val combined_chain : result -> Because_mcmc.Chain.t
(** All retained draws across samplers and chains concatenated in one
    allocation (used for point estimates where sampler identity does not
    matter, e.g. pinpointing). *)

val r_hat : result -> (string * float) list
(** Worst-coordinate potential scale reduction per sampler: across-chain
    R̂ when the sampler ran [n_chains ≥ 2], split-R̂ on the single chain
    otherwise.  Values ≲ 1.05 indicate convergence; we flag > 1.1. *)

val gate_draws : ?threshold:float -> result -> int option
(** Convergence gate: the smallest retained-draw prefix (scanned over a
    coarse grid of ~16 lengths) at which the worst {!r_hat}-style
    diagnostic across every sampler and coordinate is [<= threshold]
    (default 1.1).  [None] when no runs survived, the chains are shorter
    than 8 draws, or no prefix on the grid passes.  Warm-started epochs
    report [burn_in + gate_draws·thin] as their sweeps-to-convergence. *)

val dataset : result -> Tomography.t
