(** The BeCAUSe likelihood model (§3.1, equations 4–6).

    Each AS [i] applies the property to a proportion [pᵢ] of routes
    ([qᵢ = 1 − pᵢ]).  A path shows the property unless every AS on it stays
    silent, so

    - P(path ∣ p) = ∏ᵢ qᵢ            if the path does {e not} show it,
    - P(path ∣ p) = 1 − ∏ᵢ qᵢ        if it does,

    and the data likelihood is the product over paths.  Everything is
    computed in log space: with Sⱼ = Σᵢ ln qᵢ the positive-path term is
    ln(1 − e^{Sⱼ}), evaluated by [log1mexp].

    The model exposes the joint log posterior, its analytic gradient (for
    HMC), and a single-site delta that touches only the paths through the
    changed AS (for single-site MH). *)

type t

val create :
  ?prior:Prior.t ->
  ?node_priors:(Because_bgp.Asn.t * Prior.t) list ->
  ?false_negative_rate:float ->
  Tomography.t ->
  t
(** [node_priors] overrides the shared [prior] (default {!Prior.default})
    for specific ASs — e.g. {!Prior.Near_zero} for Beacon origins.

    [false_negative_rate] implements the §7.2 extension: with probability ε
    a path that does show the property is recorded as clean (e.g. the
    re-advertisement was lost to a session reset), so

    - P(labeled positive ∣ p) = (1 − ε)·(1 − ∏ qᵢ),
    - P(labeled clean ∣ p)   = ∏ qᵢ + ε·(1 − ∏ qᵢ).

    The default ε = 0 recovers the paper's base model exactly. *)

val dataset : t -> Tomography.t

val log_likelihood : t -> float array -> float
val log_prior : t -> float array -> float
val log_posterior : t -> float array -> float

val grad_log_posterior : t -> float array -> float array

val delta_log_posterior : t -> float array -> int -> float -> float
(** [delta_log_posterior m p i v] = log posterior with [p.(i) = v] minus the
    log posterior at [p], computed from only the paths through node [i].
    Stateless: re-sums Sⱼ over every affected path at both points.  Kept as
    the reference implementation the cached protocol is tested against. *)

val make_cache : t -> float array -> Because_mcmc.Target.cache
(** [make_cache m p0] builds the incremental evaluator positioned at [p0]:
    per-path running sums Sⱼ = Σ ln qᵢ and per-path log-probability terms,
    so a single-site delta costs O(1) per affected path
    ([log1p(−v) − log1p(−pᵢ)] shifts every Sⱼ alike) and a rejection costs
    nothing.  Agrees with {!delta_log_posterior} to ≲1e-9 (property
    tested). *)

val target : ?cached:bool -> t -> Because_mcmc.Target.t
(** Package as an MCMC target on the unit box with gradient, delta and
    (unless [~cached:false]) the incremental cache protocol.
    [~cached:false] is the reference configuration: samplers then fall back
    to the stateless [delta_log_posterior] path — used by the equivalence
    tests and the paired bench measurements. *)

val path_log_prob : t -> float array -> int -> float
(** Log probability of a single observation under [p] (exposed for tests). *)
