(** The BeCAUSe likelihood model (§3.1, equations 4–6).

    Each AS [i] applies the property to a proportion [pᵢ] of routes
    ([qᵢ = 1 − pᵢ]).  A path shows the property unless every AS on it stays
    silent, so

    - P(path ∣ p) = ∏ᵢ qᵢ            if the path does {e not} show it,
    - P(path ∣ p) = 1 − ∏ᵢ qᵢ        if it does,

    and the data likelihood is the product over paths.  Everything is
    computed in log space: with Sⱼ = Σᵢ ln qᵢ the positive-path term is
    ln(1 − e^{Sⱼ}), evaluated by [log1mexp].

    The model exposes the joint log posterior, its analytic gradient (for
    HMC), and a single-site delta that touches only the paths through the
    changed AS (for single-site MH). *)

type t

val create :
  ?prior:Prior.t ->
  ?node_priors:(Because_bgp.Asn.t * Prior.t) list ->
  ?false_negative_rate:float ->
  Tomography.t ->
  t
(** [node_priors] overrides the shared [prior] (default {!Prior.default})
    for specific ASs — e.g. {!Prior.Near_zero} for Beacon origins.

    [false_negative_rate] implements the §7.2 extension: with probability ε
    a path that does show the property is recorded as clean (e.g. the
    re-advertisement was lost to a session reset), so

    - P(labeled positive ∣ p) = (1 − ε)·(1 − ∏ qᵢ),
    - P(labeled clean ∣ p)   = ∏ qᵢ + ε·(1 − ∏ qᵢ).

    The default ε = 0 recovers the paper's base model exactly. *)

val dataset : t -> Tomography.t

val log_likelihood : t -> float array -> float
val log_prior : t -> float array -> float
val log_posterior : t -> float array -> float

val grad_log_posterior : t -> float array -> float array

val delta_log_posterior : t -> float array -> int -> float -> float
(** [delta_log_posterior m p i v] = log posterior with [p.(i) = v] minus the
    log posterior at [p], computed from only the paths through node [i]. *)

val target : t -> Because_mcmc.Target.t
(** Package as an MCMC target on the unit box with gradient and delta. *)

val path_log_prob : t -> float array -> int -> float
(** Log probability of a single observation under [p] (exposed for tests). *)
