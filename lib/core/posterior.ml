open Because_bgp
module Chain = Because_mcmc.Chain
module Summary = Because_stats.Summary
module Hdpi = Because_stats.Hdpi

type marginal = {
  asn : Asn.t;
  index : int;
  mean : float;
  hdpi : Hdpi.t;
  certainty : float;
  samples : float array;
}

let marginal ?(mass = 0.95) data chain i =
  let samples = Chain.marginal chain i in
  let hdpi = Hdpi.compute ~mass samples in
  {
    asn = Tomography.node data i;
    index = i;
    mean = Summary.mean samples;
    hdpi;
    certainty = 1.0 -. Hdpi.width hdpi;
    samples;
  }

let marginals ?mass data chain =
  Array.init (Tomography.n_nodes data) (marginal ?mass data chain)

let per_sampler ?mass result =
  let data = Infer.dataset result in
  List.map
    (fun (run : Infer.sampler_run) ->
      (run.Infer.name, marginals ?mass data run.Infer.chain))
    result.Infer.runs

let combined ?mass result =
  let data = Infer.dataset result in
  marginals ?mass data (Infer.combined_chain result)
