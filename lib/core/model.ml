module Special = Because_stats.Special
module Target = Because_mcmc.Target

type t = {
  data : Tomography.t;
  priors : Prior.t array;  (* one per node index *)
  epsilon : float;         (* false-negative rate of the labeling *)
}

let eps = 1e-9

(* Branch form of [Float.max eps (Float.min (1.0 -. eps) p)] (same result,
   NaN included): small enough for the non-flambda inliner, so the hot
   loops pay two compares instead of two boxed calls per node. *)
let clamp p = if p < eps then eps else if p > 1.0 -. eps then 1.0 -. eps else p

let create ?(prior = Prior.default) ?(node_priors = [])
    ?(false_negative_rate = 0.0) data =
  if false_negative_rate < 0.0 || false_negative_rate >= 1.0 then
    invalid_arg "Model.create: false_negative_rate outside [0, 1)";
  let priors = Array.make (Tomography.n_nodes data) prior in
  List.iter
    (fun (asn, node_prior) ->
      match Tomography.index_of data asn with
      | Some i -> priors.(i) <- node_prior
      | None -> ())
    node_priors;
  { data; priors; epsilon = false_negative_rate }

let dataset t = t.data

(* All-float mutable record: unlike a [float ref], accumulating through it
   does not box a float on every store.  The hot loops below run once per
   path per density/gradient evaluation, so this is where the sampler's
   allocation rate lives. *)
type facc = { mutable v : float }

(* Σ ln qᵢ over the nodes of path j, read straight from the point array —
   no per-call closure. *)
let path_log_q_arr t p j =
  let nodes = Tomography.path t.data j in
  let s = { v = 0.0 } in
  for k = 0 to Array.length nodes - 1 do
    s.v <-
      s.v +. Float.log1p (-.clamp (Array.get p (Array.unsafe_get nodes k)))
  done;
  s.v

(* Per-path log probability from S = Σ ln qᵢ.
   Positive label: ln(1−ε) + ln(1 − e^S).
   Clean label:    ln(ε + (1−ε)·e^S). *)
let path_term t label s =
  if label then
    (if t.epsilon = 0.0 then 0.0 else Float.log1p (-.t.epsilon))
    +. Special.log1mexp s
  else if t.epsilon = 0.0 then s
  else Float.log (t.epsilon +. ((1.0 -. t.epsilon) *. Float.exp s))

let path_log_prob t p j =
  let s = path_log_q_arr t p j in
  path_term t (Tomography.label t.data j) s

(* [path_log_q_arr]/[path_term] spelled out in one loop: without flambda a
   float-returning call boxes its argument and result, and those two calls
   per path were most of the likelihood's allocation.  The expressions are
   kept textually identical (including [Special.log1mexp]'s branch
   structure) so the sum is bit-for-bit the composed version. *)
let log_likelihood t p =
  let acc = { v = 0.0 } in
  let s = { v = 0.0 } in
  for j = 0 to Tomography.n_paths t.data - 1 do
    let nodes = Tomography.path t.data j in
    s.v <- 0.0;
    for k = 0 to Array.length nodes - 1 do
      s.v <-
        s.v +. Float.log1p (-.clamp (Array.get p (Array.unsafe_get nodes k)))
    done;
    let sv = s.v in
    let term =
      if Tomography.label t.data j then
        (if t.epsilon = 0.0 then 0.0 else Float.log1p (-.t.epsilon))
        +.
        (if sv >= 0.0 then invalid_arg "Special.log1mexp: requires x < 0"
         else if sv > -.Float.log 2.0 then Float.log (-.Float.expm1 sv)
         else Float.log1p (-.Float.exp sv))
      else if t.epsilon = 0.0 then sv
      else Float.log (t.epsilon +. ((1.0 -. t.epsilon) *. Float.exp sv))
    in
    acc.v <- acc.v +. term
  done;
  acc.v

let log_prior t p =
  let acc = { v = 0.0 } in
  for i = 0 to Array.length t.priors - 1 do
    acc.v <- acc.v +. Prior.log_pdf t.priors.(i) (clamp p.(i))
  done;
  acc.v

let log_posterior t p = log_likelihood t p +. log_prior t p

let grad_log_posterior t p =
  let n = Tomography.n_nodes t.data in
  let g = Array.make n 0.0 in
  for i = 0 to Array.length t.priors - 1 do
    g.(i) <- Prior.grad_log_pdf t.priors.(i) (clamp p.(i))
  done;
  let sacc = { v = 0.0 } in
  for j = 0 to Tomography.n_paths t.data - 1 do
    let nodes = Tomography.path t.data j in
    (* Inline Σ ln qᵢ — same motivation and op order as [log_likelihood]. *)
    sacc.v <- 0.0;
    for k = 0 to Array.length nodes - 1 do
      sacc.v <-
        sacc.v +. Float.log1p (-.clamp (Array.get p (Array.unsafe_get nodes k)))
    done;
    let s = sacc.v in
    if Tomography.label t.data j then begin
      (* ∂/∂pᵢ ln(1 − e^S) = (e^S / (1 − e^S)) / qᵢ = 1 / (expm1(−S) · qᵢ);
         the ln(1−ε) offset is constant in p. *)
      let ratio = 1.0 /. Float.expm1 (-.s) in
      for k = 0 to Array.length nodes - 1 do
        let i = Array.unsafe_get nodes k in
        g.(i) <- g.(i) +. (ratio /. (1.0 -. clamp p.(i)))
      done
    end
    else begin
      (* ∂/∂pᵢ ln(ε + (1−ε)e^S) = −(1−ε)e^S / ((ε + (1−ε)e^S) · qᵢ). *)
      let weight =
        if t.epsilon = 0.0 then 1.0
        else begin
          let q_path = Float.exp s in
          (1.0 -. t.epsilon) *. q_path
          /. (t.epsilon +. ((1.0 -. t.epsilon) *. q_path))
        end
      in
      for k = 0 to Array.length nodes - 1 do
        let i = Array.unsafe_get nodes k in
        g.(i) <- g.(i) -. (weight /. (1.0 -. clamp p.(i)))
      done
    end
  done;
  g

(* Stateful evaluator for single-site samplers.  Keeps, per path j, the
   running sufficient statistic S_j = Σ ln q_i and the resulting log
   probability term, plus per-node ln q_i.  A proposal p_i → v then shifts
   every path through i by the same dlq = ln(1−v) − ln(1−p_i), so a delta
   costs O(paths_through i) with O(1) work per path instead of re-summing
   both the old and the new point over each path.  Rejections touch
   nothing; accepts pay one [path_term] per affected path to refresh the
   term cache. *)
let make_cache t p0 =
  let n_paths = Tomography.n_paths t.data in
  let point = Array.map clamp p0 in
  let lq = Array.map (fun v -> Float.log1p (-.v)) point in
  let s = Array.make n_paths 0.0 in
  let term = Array.make n_paths 0.0 in
  for j = 0 to n_paths - 1 do
    let nodes = Tomography.path t.data j in
    let acc = { v = 0.0 } in
    for k = 0 to Array.length nodes - 1 do
      acc.v <- acc.v +. lq.(Array.unsafe_get nodes k)
    done;
    s.(j) <- acc.v;
    term.(j) <- path_term t (Tomography.label t.data j) acc.v
  done;
  let cached_delta i v =
    let v = clamp v in
    let dlq = Float.log1p (-.v) -. lq.(i) in
    let acc =
      { v = Prior.log_pdf t.priors.(i) v
            -. Prior.log_pdf t.priors.(i) point.(i) }
    in
    let paths = Tomography.paths_through t.data i in
    (* [path_term] inlined — a delta runs per proposed coordinate, and the
       boxed call per affected path was most of its cost. *)
    for k = 0 to Array.length paths - 1 do
      let j = Array.unsafe_get paths k in
      let sv = s.(j) +. dlq in
      let tj =
        if Tomography.label t.data j then
          (if t.epsilon = 0.0 then 0.0 else Float.log1p (-.t.epsilon))
          +.
          (if sv >= 0.0 then invalid_arg "Special.log1mexp: requires x < 0"
           else if sv > -.Float.log 2.0 then Float.log (-.Float.expm1 sv)
           else Float.log1p (-.Float.exp sv))
        else if t.epsilon = 0.0 then sv
        else Float.log (t.epsilon +. ((1.0 -. t.epsilon) *. Float.exp sv))
      in
      acc.v <- acc.v +. tj -. term.(j)
    done;
    acc.v
  in
  let cached_commit i v =
    let v = clamp v in
    let dlq = Float.log1p (-.v) -. lq.(i) in
    point.(i) <- v;
    lq.(i) <- Float.log1p (-.v);
    let paths = Tomography.paths_through t.data i in
    for k = 0 to Array.length paths - 1 do
      let j = Array.unsafe_get paths k in
      s.(j) <- s.(j) +. dlq;
      term.(j) <- path_term t (Tomography.label t.data j) s.(j)
    done
  in
  (* Checkpoint support.  [s] is accumulated incrementally, so a rebuild
     from the point alone lands an ulp off the live trajectory; the state
     vector therefore carries point ++ s verbatim.  [lq] and [term] are
     pure functions of point and s and are recomputed bit-identically. *)
  let dim = Array.length point in
  let cached_state () = Array.append point s in
  let cached_restore saved =
    if Array.length saved <> dim + n_paths then
      invalid_arg "Model.make_cache: saved cache state has wrong size";
    Array.blit saved 0 point 0 dim;
    Array.blit saved dim s 0 n_paths;
    for i = 0 to dim - 1 do
      lq.(i) <- Float.log1p (-.point.(i))
    done;
    for j = 0 to n_paths - 1 do
      term.(j) <- path_term t (Tomography.label t.data j) s.(j)
    done
  in
  { Target.cached_delta; cached_commit; cached_state; cached_restore }

(* Σ ln qᵢ over path j when coordinate [i] is read as [v]. *)
let path_log_q_swap t p i v j =
  let nodes = Tomography.path t.data j in
  let s = { v = 0.0 } in
  for k = 0 to Array.length nodes - 1 do
    let node = Array.unsafe_get nodes k in
    let x = if node = i then v else Array.get p node in
    s.v <- s.v +. Float.log1p (-.clamp x)
  done;
  s.v

let delta_log_posterior t p i v =
  let v = clamp v in
  let prior_delta =
    Prior.log_pdf t.priors.(i) v -. Prior.log_pdf t.priors.(i) (clamp p.(i))
  in
  let acc = { v = prior_delta } in
  let paths = Tomography.paths_through t.data i in
  for k = 0 to Array.length paths - 1 do
    let j = Array.unsafe_get paths k in
    let label = Tomography.label t.data j in
    let s_old = path_log_q_arr t p j in
    let s_new = path_log_q_swap t p i v j in
    acc.v <- acc.v +. path_term t label s_new -. path_term t label s_old
  done;
  acc.v

let target ?(cached = true) t =
  let cache = if cached then Some (make_cache t) else None in
  Target.create
    ~grad:(grad_log_posterior t)
    ~delta:(delta_log_posterior t)
    ?cache
    ~dim:(Tomography.n_nodes t.data)
    ~support:Target.Unit_interval (log_posterior t)
