module Special = Because_stats.Special
module Target = Because_mcmc.Target

type t = {
  data : Tomography.t;
  priors : Prior.t array;  (* one per node index *)
  epsilon : float;         (* false-negative rate of the labeling *)
}

let eps = 1e-9

let clamp p = Float.max eps (Float.min (1.0 -. eps) p)

let create ?(prior = Prior.default) ?(node_priors = [])
    ?(false_negative_rate = 0.0) data =
  if false_negative_rate < 0.0 || false_negative_rate >= 1.0 then
    invalid_arg "Model.create: false_negative_rate outside [0, 1)";
  let priors = Array.make (Tomography.n_nodes data) prior in
  List.iter
    (fun (asn, node_prior) ->
      match Tomography.index_of data asn with
      | Some i -> priors.(i) <- node_prior
      | None -> ())
    node_priors;
  { data; priors; epsilon = false_negative_rate }

let dataset t = t.data

(* Σ ln qᵢ over the nodes of path j, with p read through [value]. *)
let path_log_q t value j =
  let nodes = Tomography.path t.data j in
  let s = ref 0.0 in
  Array.iter (fun i -> s := !s +. Float.log1p (-.clamp (value i))) nodes;
  !s

(* Per-path log probability from S = Σ ln qᵢ.
   Positive label: ln(1−ε) + ln(1 − e^S).
   Clean label:    ln(ε + (1−ε)·e^S). *)
let path_term t label s =
  if label then
    (if t.epsilon = 0.0 then 0.0 else Float.log1p (-.t.epsilon))
    +. Special.log1mexp s
  else if t.epsilon = 0.0 then s
  else Float.log (t.epsilon +. ((1.0 -. t.epsilon) *. Float.exp s))

let path_log_prob t p j =
  let s = path_log_q t (fun i -> p.(i)) j in
  path_term t (Tomography.label t.data j) s

let log_likelihood t p =
  let acc = ref 0.0 in
  for j = 0 to Tomography.n_paths t.data - 1 do
    acc := !acc +. path_log_prob t p j
  done;
  !acc

let log_prior t p =
  let acc = ref 0.0 in
  Array.iteri
    (fun i prior -> acc := !acc +. Prior.log_pdf prior (clamp p.(i)))
    t.priors;
  !acc

let log_posterior t p = log_likelihood t p +. log_prior t p

let grad_log_posterior t p =
  let n = Tomography.n_nodes t.data in
  let g = Array.make n 0.0 in
  Array.iteri (fun i prior -> g.(i) <- Prior.grad_log_pdf prior (clamp p.(i)))
    t.priors;
  for j = 0 to Tomography.n_paths t.data - 1 do
    let nodes = Tomography.path t.data j in
    let s = path_log_q t (fun i -> p.(i)) j in
    if Tomography.label t.data j then begin
      (* ∂/∂pᵢ ln(1 − e^S) = (e^S / (1 − e^S)) / qᵢ = 1 / (expm1(−S) · qᵢ);
         the ln(1−ε) offset is constant in p. *)
      let ratio = 1.0 /. Float.expm1 (-.s) in
      Array.iter
        (fun i -> g.(i) <- g.(i) +. (ratio /. (1.0 -. clamp p.(i))))
        nodes
    end
    else begin
      (* ∂/∂pᵢ ln(ε + (1−ε)e^S) = −(1−ε)e^S / ((ε + (1−ε)e^S) · qᵢ). *)
      let weight =
        if t.epsilon = 0.0 then 1.0
        else begin
          let q_path = Float.exp s in
          (1.0 -. t.epsilon) *. q_path
          /. (t.epsilon +. ((1.0 -. t.epsilon) *. q_path))
        end
      in
      Array.iter
        (fun i -> g.(i) <- g.(i) -. (weight /. (1.0 -. clamp p.(i))))
        nodes
    end
  done;
  g

(* Stateful evaluator for single-site samplers.  Keeps, per path j, the
   running sufficient statistic S_j = Σ ln q_i and the resulting log
   probability term, plus per-node ln q_i.  A proposal p_i → v then shifts
   every path through i by the same dlq = ln(1−v) − ln(1−p_i), so a delta
   costs O(paths_through i) with O(1) work per path instead of re-summing
   both the old and the new point over each path.  Rejections touch
   nothing; accepts pay one [path_term] per affected path to refresh the
   term cache. *)
let make_cache t p0 =
  let n_paths = Tomography.n_paths t.data in
  let point = Array.map clamp p0 in
  let lq = Array.map (fun v -> Float.log1p (-.v)) point in
  let s = Array.make n_paths 0.0 in
  let term = Array.make n_paths 0.0 in
  for j = 0 to n_paths - 1 do
    let acc = ref 0.0 in
    Array.iter (fun i -> acc := !acc +. lq.(i)) (Tomography.path t.data j);
    s.(j) <- !acc;
    term.(j) <- path_term t (Tomography.label t.data j) !acc
  done;
  let cached_delta i v =
    let v = clamp v in
    let dlq = Float.log1p (-.v) -. lq.(i) in
    let acc =
      ref (Prior.log_pdf t.priors.(i) v -. Prior.log_pdf t.priors.(i) point.(i))
    in
    Array.iter
      (fun j ->
        acc :=
          !acc
          +. path_term t (Tomography.label t.data j) (s.(j) +. dlq)
          -. term.(j))
      (Tomography.paths_through t.data i);
    !acc
  in
  let cached_commit i v =
    let v = clamp v in
    let dlq = Float.log1p (-.v) -. lq.(i) in
    point.(i) <- v;
    lq.(i) <- Float.log1p (-.v);
    Array.iter
      (fun j ->
        s.(j) <- s.(j) +. dlq;
        term.(j) <- path_term t (Tomography.label t.data j) s.(j))
      (Tomography.paths_through t.data i)
  in
  (* Checkpoint support.  [s] is accumulated incrementally, so a rebuild
     from the point alone lands an ulp off the live trajectory; the state
     vector therefore carries point ++ s verbatim.  [lq] and [term] are
     pure functions of point and s and are recomputed bit-identically. *)
  let dim = Array.length point in
  let cached_state () = Array.append point s in
  let cached_restore saved =
    if Array.length saved <> dim + n_paths then
      invalid_arg "Model.make_cache: saved cache state has wrong size";
    Array.blit saved 0 point 0 dim;
    Array.blit saved dim s 0 n_paths;
    for i = 0 to dim - 1 do
      lq.(i) <- Float.log1p (-.point.(i))
    done;
    for j = 0 to n_paths - 1 do
      term.(j) <- path_term t (Tomography.label t.data j) s.(j)
    done
  in
  { Target.cached_delta; cached_commit; cached_state; cached_restore }

let delta_log_posterior t p i v =
  let v = clamp v in
  let prior_delta =
    Prior.log_pdf t.priors.(i) v -. Prior.log_pdf t.priors.(i) (clamp p.(i))
  in
  let read_new k = if k = i then v else p.(k) in
  let acc = ref prior_delta in
  Array.iter
    (fun j ->
      let label = Tomography.label t.data j in
      let s_old = path_log_q t (fun k -> p.(k)) j in
      let s_new = path_log_q t read_new j in
      acc := !acc +. path_term t label s_new -. path_term t label s_old)
    (Tomography.paths_through t.data i);
  !acc

let target ?(cached = true) t =
  let cache = if cached then Some (make_cache t) else None in
  Target.create
    ~grad:(grad_log_posterior t)
    ~delta:(delta_log_posterior t)
    ?cache
    ~dim:(Tomography.n_nodes t.data)
    ~support:Target.Unit_interval (log_posterior t)
