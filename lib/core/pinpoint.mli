(** Step 2 of the identification procedure (§5.1.2): ASs that damp
    inconsistently.

    Every path labeled RFD must contain at least one damping AS, yet an AS
    that damps only some neighbors (Verizon's AS 701) can end up with a low
    mean and no Category 4/5 flag.  For each RFD path without a flagged AS we
    compute, over the posterior draws, the probability that a given AS has
    the largest damping proportion on that path; if one AS exceeds the 0.8
    threshold (eq. 8 — written there as the argmin over the complementary
    qᵢ), it is promoted to Category 4. *)

open Because_bgp

type promotion = {
  asn : Asn.t;
  node : int;
  path_index : int;       (** The unexplained RFD path that triggered it. *)
  posterior_prob : float; (** P(this AS is the path's most likely damper). *)
}

val default_threshold : float
(** 0.8, per eq. 8. *)

val default_min_support : int
(** 2 — a promotion must be backed by at least two independent unexplained
    RFD paths.  (The paper promotes from a single path; in a simulated world
    the convergence noise that follows a release is perfectly repeatable, so
    a single mislabeled path would promote an innocent AS.  Genuinely
    inconsistent dampers sit on many damped paths, so this only filters
    noise.  See DESIGN.md §1.) *)

val promotions :
  ?threshold:float ->
  ?min_support:int ->
  Infer.result ->
  categories:(Asn.t * Categorize.t) list ->
  promotion list
(** ASs to promote to Category 4.  Uses the pooled chain of all samplers.
    Each returned promotion cites its strongest supporting path.  Returns
    [\[\]] when the result carries no sampler runs (all dropped after
    divergence). *)

val apply :
  (Asn.t * Categorize.t) list -> promotion list -> (Asn.t * Categorize.t) list
(** Raise promoted ASs to at least Category 4. *)

val assign_with_pinpointing :
  ?threshold:float -> ?min_support:int -> Infer.result -> (Asn.t * Categorize.t) list
(** {!Categorize.assign} followed by {!promotions} and {!apply} — the full
    two-step procedure. *)
