(** Five-level categorisation of the marginal posteriors (Table 1, §5.1.2).

    Categories 1/2 are highly-likely/likely {e not} showing the property,
    3 is uncertain (contradictory or insufficient data), 4/5 are
    likely/highly-likely showing it.  Each marginal receives a flag from its
    mean and a flag from its HDPI, per sampler, and the AS keeps the highest
    flag — the paper's sensitivity-first rule.

    Note on Table 1's HDPI column: the paper lists interval bounds per
    category but the text's intent (confident intervals escalate the flag,
    wide intervals stay uncertain) admits one consistent reading, which we
    implement: an interval entirely below 0.15/0.3 flags 1/2, an interval
    entirely above 0.85/0.7 flags 5/4, anything else flags 3.  See
    DESIGN.md §1. *)

type t = C1 | C2 | C3 | C4 | C5

val to_int : t -> int
val of_int : int -> t
val compare : t -> t -> int
val max_ : t -> t -> t
val pp : Format.formatter -> t -> unit

val of_mean : float -> t
(** Table 1, average column: [0,0.15)→1, [0.15,0.3)→2, [0.3,0.7)→3,
    [0.7,0.85)→4, [0.85,1]→5. *)

val of_hdpi : Because_stats.Hdpi.t -> t

val of_marginal : Posterior.marginal -> t
(** Highest of the mean flag and the HDPI flag. *)

val damping : t -> bool
(** The paper accepts categories 4 and 5 as RFD-enabled. *)

val assign :
  ?min_support:int -> Infer.result -> (Because_bgp.Asn.t * t) list
(** Per-AS category: highest flag across the MH and HMC marginals.

    An AS crossed by fewer than [min_support] observations (default 1 — no
    demotion) is forced to C3: with its feeds truncated by faults there is
    not enough surviving evidence to call it either way.  When every
    sampler was dropped ({!Infer.result}[.runs = \[\]]) all ASs are C3. *)

val insufficient : Infer.result -> min_support:int -> Because_bgp.Asn.t list
(** The ASs {!assign} demotes for lack of evidence, in node order. *)

val shares : t list -> (t * int * float) list
(** Count and share per category (Table 2 rows). *)
