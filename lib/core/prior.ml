module Dist = Because_stats.Dist

type t = Uniform | Beta of { a : float; b : float } | Near_zero

let default = Beta { a = 0.5; b = 0.5 }

let near_zero_a = 1.0
let near_zero_b = 20.0

let log_pdf t p =
  match t with
  | Uniform -> if p < 0.0 || p > 1.0 then neg_infinity else 0.0
  | Beta { a; b } -> Dist.beta_log_pdf ~a ~b p
  | Near_zero -> Dist.beta_log_pdf ~a:near_zero_a ~b:near_zero_b p

let grad_beta ~a ~b p =
  let p = Float.max 1e-12 (Float.min (1.0 -. 1e-12) p) in
  ((a -. 1.0) /. p) -. ((b -. 1.0) /. (1.0 -. p))

let grad_log_pdf t p =
  match t with
  | Uniform -> 0.0
  | Beta { a; b } -> grad_beta ~a ~b p
  | Near_zero -> grad_beta ~a:near_zero_a ~b:near_zero_b p

let pp fmt = function
  | Uniform -> Format.pp_print_string fmt "uniform"
  | Beta { a; b } -> Format.fprintf fmt "beta(%.2f,%.2f)" a b
  | Near_zero -> Format.pp_print_string fmt "near-zero"
