open Because_bgp

type metrics = {
  true_positives : int;
  false_positives : int;
  false_negatives : int;
  true_negatives : int;
  precision : float;
  recall : float;
  f1 : float;
}

let of_sets ~predicted ~truth ~universe =
  let predicted = Asn.Set.inter predicted universe in
  let truth = Asn.Set.inter truth universe in
  let tp = Asn.Set.cardinal (Asn.Set.inter predicted truth) in
  let fp = Asn.Set.cardinal (Asn.Set.diff predicted truth) in
  let fn = Asn.Set.cardinal (Asn.Set.diff truth predicted) in
  let tn = Asn.Set.cardinal universe - tp - fp - fn in
  let ratio num den = if den = 0 then 1.0 else float_of_int num /. float_of_int den in
  let precision = ratio tp (tp + fp) in
  let recall = ratio tp (tp + fn) in
  let f1 =
    if precision +. recall = 0.0 then 0.0
    else 2.0 *. precision *. recall /. (precision +. recall)
  in
  {
    true_positives = tp;
    false_positives = fp;
    false_negatives = fn;
    true_negatives = tn;
    precision;
    recall;
    f1;
  }

let damping_set categories =
  List.fold_left
    (fun acc (asn, c) ->
      if Categorize.damping c then Asn.Set.add asn acc else acc)
    Asn.Set.empty categories

let pp fmt m =
  Format.fprintf fmt
    "precision=%.1f%% recall=%.1f%% (tp=%d fp=%d fn=%d tn=%d)"
    (100.0 *. m.precision) (100.0 *. m.recall) m.true_positives
    m.false_positives m.false_negatives m.true_negatives
