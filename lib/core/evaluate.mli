(** Precision/recall evaluation against ground truth (§6.3, Table 4). *)

open Because_bgp

type metrics = {
  true_positives : int;
  false_positives : int;
  false_negatives : int;
  true_negatives : int;
  precision : float;  (** 1.0 when no positives were predicted. *)
  recall : float;     (** 1.0 when there is nothing to recall. *)
  f1 : float;
}

val of_sets :
  predicted:Asn.Set.t -> truth:Asn.Set.t -> universe:Asn.Set.t -> metrics
(** Evaluate a predicted positive set against the true positive set over a
    universe of evaluated ASs.  Members of [predicted]/[truth] outside
    [universe] are ignored. *)

val damping_set : (Asn.t * Categorize.t) list -> Asn.Set.t
(** The ASs flagged Category 4 or 5. *)

val pp : Format.formatter -> metrics -> unit
