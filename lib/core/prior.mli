(** Prior distributions over per-AS damping proportions (§3.2).

    The paper tested uniform and Beta priors and found the data dominates for
    most ASs; a good prior mainly sharpens uncertainty quantification.
    {!default} is the U-shaped Jeffreys Beta(½, ½): most ASs either damp a
    session or don't, so mass concentrates near 0 and 1 — this is the prior
    shape recovered for data-starved ASs in Fig. 9(d).

    [Point_mass_at_zero] is used for nodes known a priori not to show the
    property (the Beacon origin ASs, whose upstreams were verified not to
    damp): implemented as a very sharp Beta towards 0 rather than a true
    point mass so samplers stay ergodic. *)

type t =
  | Uniform
  | Beta of { a : float; b : float }
  | Near_zero  (** Sharp evidence that the node does not show the property. *)

val default : t
(** [Beta {a = 0.5; b = 0.5}]. *)

val log_pdf : t -> float -> float
val grad_log_pdf : t -> float -> float

val pp : Format.formatter -> t -> unit
