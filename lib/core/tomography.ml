open Because_bgp

type t = {
  node_of_index : Asn.t array;
  index_of_node : int Asn.Map.t;
  paths : int array array;
  labels : bool array;
  incidence : int array array;
}

let of_observations observations =
  if observations = [] then
    invalid_arg "Tomography.of_observations: no observations";
  List.iter
    (fun (path, _) ->
      if path = [] then
        invalid_arg "Tomography.of_observations: empty path")
    observations;
  (* Assign indices in order of first appearance for determinism. *)
  let index_of_node = ref Asn.Map.empty in
  let rev_nodes = ref [] in
  let n = ref 0 in
  let index_of asn =
    match Asn.Map.find_opt asn !index_of_node with
    | Some i -> i
    | None ->
        let i = !n in
        index_of_node := Asn.Map.add asn i !index_of_node;
        rev_nodes := asn :: !rev_nodes;
        incr n;
        i
  in
  let paths =
    Array.of_list
      (List.map
         (fun (path, _) -> Array.of_list (List.map index_of path))
         observations)
  in
  let labels = Array.of_list (List.map snd observations) in
  let node_of_index = Array.of_list (List.rev !rev_nodes) in
  let incidence_lists = Array.make !n [] in
  Array.iteri
    (fun j path ->
      (* A node may appear once per path after cleaning, but be defensive
         about duplicates. *)
      let seen = Hashtbl.create 8 in
      Array.iter
        (fun i ->
          if not (Hashtbl.mem seen i) then begin
            Hashtbl.replace seen i ();
            incidence_lists.(i) <- j :: incidence_lists.(i)
          end)
        path)
    paths;
  let incidence =
    Array.map (fun l -> Array.of_list (List.rev l)) incidence_lists
  in
  { node_of_index; index_of_node = !index_of_node; paths; labels; incidence }

let n_nodes t = Array.length t.node_of_index
let n_paths t = Array.length t.paths
let node t i = t.node_of_index.(i)
let index_of t asn = Asn.Map.find_opt asn t.index_of_node
let nodes t = Array.copy t.node_of_index
let path t j = t.paths.(j)
let label t j = t.labels.(j)
let paths_through t i = t.incidence.(i)
let support t i = Array.length t.incidence.(i)

let rfd_path_count t =
  Array.fold_left (fun acc l -> if l then acc + 1 else acc) 0 t.labels

let positive_share t =
  float_of_int (rfd_path_count t) /. float_of_int (n_paths t)
