(** The SAT formulation of binary network tomography (§8, [10]).

    Prior work localises censoring/damping ASs by logical constraints: a
    clean path asserts that {e no} AS on it has the property (unit clauses
    ¬xᵢ), an affected path that {e at least one} does (the clause
    x₁ ∨ … ∨ xₖ).  The paper argues this breaks down in practice — the
    formula has many solutions on sparse data and {e zero} solutions under
    measurement noise or inconsistent deployment (AS 701 damps some paths
    and not others, so its clean paths force ¬x₇₀₁ while a damped path whose
    other members are all exonerated forces x₇₀₁).

    This module encodes a {!Because.Tomography} dataset and reports which of
    the regimes it falls in, so the claim can be measured instead of
    asserted. *)

open Because_bgp

type verdict =
  | Unsat
      (** Contradictory observations: no 0/1 assignment explains the data —
          the paper's "zero valid solutions" regime. *)
  | Unique of Asn.Set.t  (** Exactly one damping set explains the data. *)
  | Multiple of { example : Asn.Set.t; count_at_least : int }
      (** Under-determined: several damping sets fit. *)

val encode : Because.Tomography.t -> int list list
(** CNF over variables 1..n_nodes (variable = node index + 1). *)

val solve : ?solution_limit:int -> Because.Tomography.t -> verdict
(** [solution_limit] (default 16) caps the multiplicity enumeration. *)

val pp_verdict : Format.formatter -> verdict -> unit
