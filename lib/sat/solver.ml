type literal = int
type clause = literal list
type outcome = Sat of bool array | Unsat

let validate ~n_vars clauses =
  if n_vars <= 0 then invalid_arg "Solver.solve: n_vars must be positive";
  List.iter
    (List.iter (fun l ->
         let v = abs l in
         if l = 0 || v > n_vars then
           invalid_arg "Solver.solve: literal out of range"))
    clauses

(* Assignment: 0 = unassigned, 1 = true, -1 = false. *)
let value assignment literal =
  let v = assignment.(abs literal) in
  if v = 0 then 0 else if literal > 0 then v else -v

let rec dpll assignment clauses =
  (* Unit propagation to a fixed point. *)
  let rec propagate clauses =
    let changed = ref false in
    let conflict = ref false in
    let remaining =
      List.filter_map
        (fun clause ->
          let satisfied =
            List.exists (fun l -> value assignment l = 1) clause
          in
          if satisfied then None
          else begin
            let unassigned =
              List.filter (fun l -> value assignment l = 0) clause
            in
            match unassigned with
            | [] ->
                conflict := true;
                Some clause
            | [ unit_literal ] ->
                assignment.(abs unit_literal) <-
                  (if unit_literal > 0 then 1 else -1);
                changed := true;
                None
            | _ -> Some clause
          end)
        clauses
    in
    if !conflict then None
    else if !changed then propagate remaining
    else Some remaining
  in
  match propagate clauses with
  | None -> false
  | Some [] -> true
  | Some remaining -> (
      (* Branch on the first unassigned variable of the first clause. *)
      match
        List.find_map
          (fun clause ->
            List.find_opt (fun l -> value assignment l = 0) clause)
          remaining
      with
      | None -> true (* all remaining clauses satisfied by propagation *)
      | Some literal ->
          let v = abs literal in
          let saved = Array.copy assignment in
          assignment.(v) <- 1;
          if dpll assignment remaining then true
          else begin
            Array.blit saved 0 assignment 0 (Array.length saved);
            assignment.(v) <- -1;
            if dpll assignment remaining then true
            else begin
              Array.blit saved 0 assignment 0 (Array.length saved);
              false
            end
          end)

let solve ~n_vars clauses =
  validate ~n_vars clauses;
  let assignment = Array.make (n_vars + 1) 0 in
  if dpll assignment clauses then begin
    (* Unconstrained variables default to false. *)
    Sat (Array.init (n_vars + 1) (fun v -> v > 0 && assignment.(v) = 1))
  end
  else Unsat

let count_solutions ?(limit = 16) ~n_vars clauses =
  let rec go clauses count =
    if count >= limit then count
    else
      match solve ~n_vars clauses with
      | Unsat -> count
      | Sat model ->
          (* Block this model and continue. *)
          let blocking =
            List.init n_vars (fun i ->
                let v = i + 1 in
                if model.(v) then -v else v)
          in
          go (blocking :: clauses) (count + 1)
  in
  go clauses 0
