(** A small CNF SAT solver (DPLL with unit propagation).

    Built for the binary-tomography baseline of §8: prior work [10] casts
    censorship localisation as SAT; the paper argues such formulations
    either return many solutions or none at all under measurement noise and
    inconsistent deployment.  This solver is strong enough to demonstrate
    both failure modes on our datasets (hundreds of variables, thousands of
    clauses of the shapes tomography produces). *)

type literal = int
(** Non-zero integer: variable [v] is literal [v], its negation [-v]. *)

type clause = literal list

type outcome =
  | Sat of bool array  (** [assignment.(v)] for variables 1..n (index 0 unused). *)
  | Unsat

val solve : n_vars:int -> clause list -> outcome
(** Raises [Invalid_argument] on literals outside [1..n_vars] or empty
    variable counts ≤ 0.  An empty clause in the input is immediately
    unsatisfiable. *)

val count_solutions : ?limit:int -> n_vars:int -> clause list -> int
(** Number of satisfying assignments, enumerated with blocking clauses and
    capped at [limit] (default 16) — enough to distinguish "unique" from
    "many". *)
