open Because_bgp
module Tomography = Because.Tomography

type verdict =
  | Unsat
  | Unique of Asn.Set.t
  | Multiple of { example : Asn.Set.t; count_at_least : int }

let encode data =
  let clauses = ref [] in
  for j = 0 to Tomography.n_paths data - 1 do
    let nodes = Tomography.path data j in
    if Tomography.label data j then
      (* At least one AS on the path has the property. *)
      clauses :=
        Array.to_list (Array.map (fun i -> i + 1) nodes) :: !clauses
    else
      (* No AS on the path has it: one unit clause per member. *)
      Array.iter (fun i -> clauses := [ -(i + 1) ] :: !clauses) nodes
  done;
  List.rev !clauses

let model_to_set data model =
  let set = ref Asn.Set.empty in
  for i = 0 to Tomography.n_nodes data - 1 do
    if model.(i + 1) then set := Asn.Set.add (Tomography.node data i) !set
  done;
  !set

let solve ?(solution_limit = 16) data =
  let n_vars = Tomography.n_nodes data in
  let clauses = encode data in
  match Solver.solve ~n_vars clauses with
  | Solver.Unsat -> Unsat
  | Solver.Sat model ->
      let example = model_to_set data model in
      let count =
        Solver.count_solutions ~limit:solution_limit ~n_vars clauses
      in
      if count = 1 then Unique example
      else Multiple { example; count_at_least = count }

let pp_verdict fmt = function
  | Unsat ->
      Format.pp_print_string fmt
        "UNSAT: no consistent damping set explains the observations"
  | Unique set ->
      Format.fprintf fmt "unique solution: {%s}"
        (String.concat ", "
           (List.map Asn.to_string (Asn.Set.elements set)))
  | Multiple { example; count_at_least } ->
      Format.fprintf fmt "at least %d solutions; one example: {%s}"
        count_at_least
        (String.concat ", "
           (List.map Asn.to_string (Asn.Set.elements example)))
