(** Convergence diagnostics for MCMC output. *)

val autocorrelation : float array -> int -> float
(** [autocorrelation xs lag] is the sample autocorrelation at [lag]
    (0 when the series is constant or shorter than [lag + 2]). *)

val effective_sample_size : float array -> float
(** Effective sample size via Geyer's initial positive sequence: pair
    consecutive autocorrelations and truncate at the first non-positive
    pair sum. *)

val split_r_hat : float array -> float
(** Split-R̂ (Gelman–Rubin on the two halves of a single chain).  Values
    close to 1 indicate the chain has mixed; we flag > 1.1. *)

val r_hat : float array array -> float
(** Classic multi-chain potential scale reduction factor. *)

val split_r_hat_coord : Chain.t -> int -> float
(** [split_r_hat_coord chain i] equals [split_r_hat (Chain.marginal chain i)]
    bit-for-bit, computed directly over the chain's flat storage without
    materialising the marginal. *)

val r_hat_coord : Chain.t array -> int -> float
(** [r_hat_coord chains i] equals
    [r_hat (Array.map (fun c -> Chain.marginal c i) chains)] bit-for-bit,
    without materialising the marginals.  Raises [Invalid_argument] on
    fewer than two chains or unequal lengths. *)

val summary_line : name:string -> float array -> string
(** One-line "mean sd ess rhat" rendering for reports. *)
