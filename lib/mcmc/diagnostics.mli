(** Convergence diagnostics for MCMC output. *)

val autocorrelation : float array -> int -> float
(** [autocorrelation xs lag] is the sample autocorrelation at [lag]
    (0 when the series is constant or shorter than [lag + 2]). *)

val effective_sample_size : float array -> float
(** Effective sample size via Geyer's initial positive sequence: pair
    consecutive autocorrelations and truncate at the first non-positive
    pair sum. *)

val split_r_hat : float array -> float
(** Split-R̂ (Gelman–Rubin on the two halves of a single chain).  Values
    close to 1 indicate the chain has mixed; we flag > 1.1. *)

val r_hat : float array array -> float
(** Classic multi-chain potential scale reduction factor. *)

val summary_line : name:string -> float array -> string
(** One-line "mean sd ess rhat" rendering for reports. *)
