module Rng = Because_stats.Rng
module Dist = Because_stats.Dist

type result = {
  chain : Chain.t;
  acceptance : float;
  step_sizes : float array;
}

(* Complete mid-run state of [run_single_site], captured between sweeps.
   Everything the next sweep reads is here — including the exact RNG stream
   position and the incremental likelihood cache's sufficient statistics —
   so a run resumed from a snapshot replays the identical trajectory. *)
type state = {
  s_sweep : int;
  s_rng : string;
  s_current : float array;
  s_steps : float array;
  s_log_post : float;
  s_accept_window : int array;
  s_kept : float array; (* flat row-major kept draws, kept × dim *)
  s_accepted_post : int;
  s_proposed_post : int;
  s_cache : float array option;
}

let rec reflect_unit x =
  if x < 0.0 then reflect_unit (-.x)
  else if x > 1.0 then reflect_unit (2.0 -. x)
  else x

let default_init target =
  match target.Target.support with
  | Target.Unit_interval -> Array.make target.Target.dim 0.5
  | Target.Unbounded -> Array.make target.Target.dim 0.0

let clamp_unit x = Float.max 1e-9 (Float.min (1.0 -. 1e-9) x)

let check_initial_lp ~who lp point =
  if not (Float.is_finite lp) then
    failwith
      (Printf.sprintf
         "%s: non-finite log-density (%g) at the initial point [%s] — the \
          target is broken or the initializer lies outside its support"
         who lp
         (String.concat "; "
            (Array.to_list (Array.map (Printf.sprintf "%g") point))))

(* Robbins–Monro style log-scale adaptation towards a target acceptance. *)
let adapt_step step ~observed ~target_rate ~sweep =
  let rate = 1.0 /. Float.sqrt (float_of_int (sweep + 1)) in
  let next = step *. Float.exp (rate *. (observed -. target_rate)) in
  Float.max 1e-4 (Float.min 2.0 next)

let run_single_site ~rng ?init ?(initial_step = 0.2) ?(thin = 1) ?resume
    ?control ~n_samples ~burn_in target =
  if thin <= 0 then
    invalid_arg "Metropolis.run_single_site: thin must be positive";
  let dim = target.Target.dim in
  (* A resumed run continues the *saved* stream; the caller's rng is left
     untouched (it was never consumed before the snapshot either). *)
  let rng =
    match resume with Some s -> Rng.of_state s.s_rng | None -> rng
  in
  let current =
    match resume with
    | Some s ->
        if Array.length s.s_current <> dim then
          invalid_arg
            "Metropolis.run_single_site: resume state dimension mismatch";
        Array.copy s.s_current
    | None -> (
        match init with Some p -> Array.copy p | None -> default_init target)
  in
  (match target.Target.support with
  | Target.Unit_interval ->
      Array.iteri (fun i v -> current.(i) <- clamp_unit v) current
  | Target.Unbounded -> ());
  let steps =
    match resume with
    | Some s ->
        if Array.length s.s_steps <> dim then
          invalid_arg
            "Metropolis.run_single_site: resume state dimension mismatch";
        Array.copy s.s_steps
    | None -> Array.make dim initial_step
  in
  let log_post =
    match resume with
    | Some s -> ref s.s_log_post
    | None ->
        let lp = target.Target.log_density current in
        check_initial_lp ~who:"Metropolis.run_single_site" lp current;
        ref lp
  in
  let accept_window =
    match resume with
    | Some s ->
        if Array.length s.s_accept_window <> dim then
          invalid_arg
            "Metropolis.run_single_site: resume state dimension mismatch";
        Array.copy s.s_accept_window
    | None -> Array.make dim 0
  in
  let window = 25 in
  let kept = Chain.Builder.create ~dim ~capacity:n_samples in
  (match resume with
  | Some s ->
      if Array.length s.s_kept > n_samples * dim then
        invalid_arg
          "Metropolis.run_single_site: resume state has more draws than \
           n_samples";
      (match Chain.Builder.load_flat kept s.s_kept with
      | () -> ()
      | exception Invalid_argument _ ->
          invalid_arg
            "Metropolis.run_single_site: resume state dimension mismatch")
  | None -> ());
  let accepted_post = ref 0 and proposed_post = ref 0 in
  (match resume with
  | Some s ->
      accepted_post := s.s_accepted_post;
      proposed_post := s.s_proposed_post
  | None -> ());
  let propose i =
    let v = current.(i) in
    let v' = v +. Dist.normal rng ~mu:0.0 ~sigma:steps.(i) in
    match target.Target.support with
    | Target.Unit_interval -> clamp_unit (reflect_unit v')
    | Target.Unbounded -> v'
  in
  (* Prefer the stateful protocol: deltas are O(1) per affected observation
     and rejections are free.  Fall back to the stateless delta, then to a
     full recompute. *)
  let cache = Option.map (fun mk -> mk current) target.Target.make_cache in
  (* The cache's incremental statistics must continue exactly where the
     snapshot left them — rebuilding from the point recomputes sums that
     differ in the last ulp and would fork the trajectory. *)
  (match resume with
  | Some s -> (
      match (cache, s.s_cache) with
      | Some c, Some saved -> c.Target.cached_restore saved
      | None, None -> ()
      | Some _, None ->
          invalid_arg
            "Metropolis.run_single_site: resume state lacks the cache state \
             this target requires"
      | None, Some _ ->
          invalid_arg
            "Metropolis.run_single_site: resume state carries a cache state \
             but the target has no cache")
  | None -> ());
  let delta_at i v' =
    match cache with
    | Some c -> c.Target.cached_delta i v'
    | None -> (
        match target.Target.log_density_delta with
        | Some delta -> delta current i v'
        | None ->
            let p' = Target.with_coordinate current i v' in
            target.Target.log_density p' -. !log_post)
  in
  let commit i v' =
    (match cache with Some c -> c.Target.cached_commit i v' | None -> ());
    current.(i) <- v'
  in
  let sweep_idx =
    ref (match resume with Some s -> s.s_sweep | None -> 0)
  in
  let snapshot () =
    {
      s_sweep = !sweep_idx;
      s_rng = Rng.state rng;
      s_current = Array.copy current;
      s_steps = Array.copy steps;
      s_log_post = !log_post;
      s_accept_window = Array.copy accept_window;
      (* One flat copy of the kept prefix — the old representation copied
         every row twice (sub + map copy). *)
      s_kept = Chain.Builder.flat_prefix kept;
      s_accepted_post = !accepted_post;
      s_proposed_post = !proposed_post;
      s_cache = Option.map (fun c -> c.Target.cached_state ()) cache;
    }
  in
  let total_sweeps = burn_in + (n_samples * thin) in
  let finished = ref (Chain.Builder.count kept >= n_samples) in
  while not !finished do
    let in_burn_in = !sweep_idx < burn_in in
    for i = 0 to dim - 1 do
      let v' = propose i in
      let d = delta_at i v' in
      let accept = d >= 0.0 || Rng.float rng < Float.exp d in
      if not in_burn_in then incr proposed_post;
      if accept then begin
        commit i v';
        log_post := !log_post +. d;
        if in_burn_in then accept_window.(i) <- accept_window.(i) + 1
        else incr accepted_post
      end
    done;
    if in_burn_in && (!sweep_idx + 1) mod window = 0 then
      Array.iteri
        (fun i acc ->
          let observed = float_of_int acc /. float_of_int window in
          steps.(i) <-
            adapt_step steps.(i) ~observed ~target_rate:0.44
              ~sweep:!sweep_idx;
          accept_window.(i) <- 0)
        accept_window;
    if not in_burn_in then begin
      let post_sweep = !sweep_idx - burn_in in
      if post_sweep mod thin = 0 && Chain.Builder.count kept < n_samples then
        Chain.Builder.push kept current
    end;
    incr sweep_idx;
    if Chain.Builder.count kept >= n_samples then finished := true;
    (* Defensive: the loop is bounded by construction, but guard anyway. *)
    if !sweep_idx > total_sweeps + thin then finished := true;
    (* Supervision / checkpoint hook: the state thunk is only materialised
       when the supervisor actually saves.  Exceptions (budget aborts,
       simulated kills) propagate to the caller. *)
    match control with
    | Some f -> f ~sweep:!sweep_idx ~state:snapshot
    | None -> ()
  done;
  let acceptance =
    if !proposed_post = 0 then 0.0
    else float_of_int !accepted_post /. float_of_int !proposed_post
  in
  { chain = Chain.Builder.to_chain kept; acceptance; step_sizes = steps }

let run_vector ~rng ?init ?(initial_step = 0.05) ?(thin = 1) ~n_samples
    ~burn_in target =
  if thin <= 0 then invalid_arg "Metropolis.run_vector: thin must be positive";
  let dim = target.Target.dim in
  let current =
    match init with Some p -> Array.copy p | None -> default_init target
  in
  let step = ref initial_step in
  let log_post = ref (target.Target.log_density current) in
  check_initial_lp ~who:"Metropolis.run_vector" !log_post current;
  let kept = Chain.Builder.create ~dim ~capacity:n_samples in
  let accepted_post = ref 0 and proposed_post = ref 0 in
  let accept_window = ref 0 in
  let window = 25 in
  let sweep_idx = ref 0 in
  let total_sweeps = burn_in + (n_samples * thin) in
  let finished = ref false in
  while not !finished do
    let in_burn_in = !sweep_idx < burn_in in
    let proposal =
      Array.map
        (fun v ->
          let v' = v +. Dist.normal rng ~mu:0.0 ~sigma:!step in
          match target.Target.support with
          | Target.Unit_interval -> clamp_unit (reflect_unit v')
          | Target.Unbounded -> v')
        current
    in
    let lp' = target.Target.log_density proposal in
    let d = lp' -. !log_post in
    let accept = d >= 0.0 || Rng.float rng < Float.exp d in
    if not in_burn_in then incr proposed_post;
    if accept then begin
      Array.blit proposal 0 current 0 dim;
      log_post := lp';
      if in_burn_in then incr accept_window else incr accepted_post
    end;
    if in_burn_in && (!sweep_idx + 1) mod window = 0 then begin
      let observed = float_of_int !accept_window /. float_of_int window in
      step := adapt_step !step ~observed ~target_rate:0.234 ~sweep:!sweep_idx;
      accept_window := 0
    end;
    if not in_burn_in then begin
      let post_sweep = !sweep_idx - burn_in in
      if post_sweep mod thin = 0 && Chain.Builder.count kept < n_samples then
        Chain.Builder.push kept current
    end;
    incr sweep_idx;
    if Chain.Builder.count kept >= n_samples then finished := true;
    (* Defensive: the loop is bounded by construction, but guard anyway. *)
    if !sweep_idx > total_sweeps + thin then finished := true
  done;
  let acceptance =
    if !proposed_post = 0 then 0.0
    else float_of_int !accepted_post /. float_of_int !proposed_post
  in
  { chain = Chain.Builder.to_chain kept; acceptance;
    step_sizes = Array.make dim !step }
