module Rng = Because_stats.Rng
module Dist = Because_stats.Dist

type result = {
  chain : Chain.t;
  acceptance : float;
  step_sizes : float array;
}

let rec reflect_unit x =
  if x < 0.0 then reflect_unit (-.x)
  else if x > 1.0 then reflect_unit (2.0 -. x)
  else x

let default_init target =
  match target.Target.support with
  | Target.Unit_interval -> Array.make target.Target.dim 0.5
  | Target.Unbounded -> Array.make target.Target.dim 0.0

let clamp_unit x = Float.max 1e-9 (Float.min (1.0 -. 1e-9) x)

let check_initial_lp ~who lp point =
  if not (Float.is_finite lp) then
    failwith
      (Printf.sprintf
         "%s: non-finite log-density (%g) at the initial point [%s] — the \
          target is broken or the initializer lies outside its support"
         who lp
         (String.concat "; "
            (Array.to_list (Array.map (Printf.sprintf "%g") point))))

(* Robbins–Monro style log-scale adaptation towards a target acceptance. *)
let adapt_step step ~observed ~target_rate ~sweep =
  let rate = 1.0 /. Float.sqrt (float_of_int (sweep + 1)) in
  let next = step *. Float.exp (rate *. (observed -. target_rate)) in
  Float.max 1e-4 (Float.min 2.0 next)

let run_single_site ~rng ?init ?(initial_step = 0.2) ?(thin = 1) ~n_samples
    ~burn_in target =
  let dim = target.Target.dim in
  let current =
    match init with Some p -> Array.copy p | None -> default_init target
  in
  (match target.Target.support with
  | Target.Unit_interval ->
      Array.iteri (fun i v -> current.(i) <- clamp_unit v) current
  | Target.Unbounded -> ());
  let steps = Array.make dim initial_step in
  let log_post = ref (target.Target.log_density current) in
  check_initial_lp ~who:"Metropolis.run_single_site" !log_post current;
  let accept_window = Array.make dim 0 in
  let window = 25 in
  let kept = Array.make n_samples [||] in
  let kept_count = ref 0 in
  let accepted_post = ref 0 and proposed_post = ref 0 in
  let propose i =
    let v = current.(i) in
    let v' = v +. Dist.normal rng ~mu:0.0 ~sigma:steps.(i) in
    match target.Target.support with
    | Target.Unit_interval -> clamp_unit (reflect_unit v')
    | Target.Unbounded -> v'
  in
  (* Prefer the stateful protocol: deltas are O(1) per affected observation
     and rejections are free.  Fall back to the stateless delta, then to a
     full recompute. *)
  let cache = Option.map (fun mk -> mk current) target.Target.make_cache in
  let delta_at i v' =
    match cache with
    | Some c -> c.Target.cached_delta i v'
    | None -> (
        match target.Target.log_density_delta with
        | Some delta -> delta current i v'
        | None ->
            let p' = Target.with_coordinate current i v' in
            target.Target.log_density p' -. !log_post)
  in
  let commit i v' =
    (match cache with Some c -> c.Target.cached_commit i v' | None -> ());
    current.(i) <- v'
  in
  let sweep_idx = ref 0 in
  let total_sweeps = burn_in + (n_samples * thin) in
  while !kept_count < n_samples do
    let in_burn_in = !sweep_idx < burn_in in
    for i = 0 to dim - 1 do
      let v' = propose i in
      let d = delta_at i v' in
      let accept = d >= 0.0 || Rng.float rng < Float.exp d in
      if not in_burn_in then incr proposed_post;
      if accept then begin
        commit i v';
        log_post := !log_post +. d;
        if in_burn_in then accept_window.(i) <- accept_window.(i) + 1
        else incr accepted_post
      end
    done;
    if in_burn_in && (!sweep_idx + 1) mod window = 0 then
      Array.iteri
        (fun i acc ->
          let observed = float_of_int acc /. float_of_int window in
          steps.(i) <-
            adapt_step steps.(i) ~observed ~target_rate:0.44
              ~sweep:!sweep_idx;
          accept_window.(i) <- 0)
        accept_window;
    if not in_burn_in then begin
      let post_sweep = !sweep_idx - burn_in in
      if post_sweep mod thin = 0 && !kept_count < n_samples then begin
        kept.(!kept_count) <- Array.copy current;
        incr kept_count
      end
    end;
    incr sweep_idx;
    (* Defensive: the loop is bounded by construction, but guard anyway. *)
    if !sweep_idx > total_sweeps + thin then
      kept_count := n_samples
  done;
  let acceptance =
    if !proposed_post = 0 then 0.0
    else float_of_int !accepted_post /. float_of_int !proposed_post
  in
  { chain = Chain.of_samples kept; acceptance; step_sizes = steps }

let run_vector ~rng ?init ?(initial_step = 0.05) ?(thin = 1) ~n_samples
    ~burn_in target =
  let dim = target.Target.dim in
  let current =
    match init with Some p -> Array.copy p | None -> default_init target
  in
  let step = ref initial_step in
  let log_post = ref (target.Target.log_density current) in
  check_initial_lp ~who:"Metropolis.run_vector" !log_post current;
  let kept = Array.make n_samples [||] in
  let kept_count = ref 0 in
  let accepted_post = ref 0 and proposed_post = ref 0 in
  let accept_window = ref 0 in
  let window = 25 in
  let sweep_idx = ref 0 in
  let total_sweeps = burn_in + (n_samples * thin) in
  while !kept_count < n_samples do
    let in_burn_in = !sweep_idx < burn_in in
    let proposal =
      Array.map
        (fun v ->
          let v' = v +. Dist.normal rng ~mu:0.0 ~sigma:!step in
          match target.Target.support with
          | Target.Unit_interval -> clamp_unit (reflect_unit v')
          | Target.Unbounded -> v')
        current
    in
    let lp' = target.Target.log_density proposal in
    let d = lp' -. !log_post in
    let accept = d >= 0.0 || Rng.float rng < Float.exp d in
    if not in_burn_in then incr proposed_post;
    if accept then begin
      Array.blit proposal 0 current 0 dim;
      log_post := lp';
      if in_burn_in then incr accept_window else incr accepted_post
    end;
    if in_burn_in && (!sweep_idx + 1) mod window = 0 then begin
      let observed = float_of_int !accept_window /. float_of_int window in
      step := adapt_step !step ~observed ~target_rate:0.234 ~sweep:!sweep_idx;
      accept_window := 0
    end;
    if not in_burn_in then begin
      let post_sweep = !sweep_idx - burn_in in
      if post_sweep mod thin = 0 && !kept_count < n_samples then begin
        kept.(!kept_count) <- Array.copy current;
        incr kept_count
      end
    end;
    incr sweep_idx;
    (* Defensive: the loop is bounded by construction, but guard anyway. *)
    if !sweep_idx > total_sweeps + thin then
      kept_count := n_samples
  done;
  let acceptance =
    if !proposed_post = 0 then 0.0
    else float_of_int !accepted_post /. float_of_int !proposed_post
  in
  { chain = Chain.of_samples kept; acceptance;
    step_sizes = Array.make dim !step }
