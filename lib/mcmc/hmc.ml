module Rng = Because_stats.Rng
module Dist = Because_stats.Dist

type result = { chain : Chain.t; acceptance : float; step_size : float }

(* All-float mutable record: stored flat, so loop accumulation through it
   does not allocate (a [float ref] boxes every store). *)
type kacc = { mutable k : float }

(* Complete between-iterations state of [run]; see Metropolis.state for the
   design notes.  [s_position] lives in the *unconstrained* space the
   integrator works in. *)
type state = {
  s_iter : int;
  s_rng : string;
  s_position : float array;
  s_step : float;
  s_log_post : float;
  s_accept_window : int;
  s_kept : float array; (* flat row-major kept draws, kept × dim *)
  s_accepted_post : int;
  s_proposed_post : int;
}

let sigmoid x =
  if x >= 0.0 then 1.0 /. (1.0 +. Float.exp (-.x))
  else begin
    let e = Float.exp x in
    e /. (1.0 +. e)
  end

let logit p =
  let p = Float.max 1e-12 (Float.min (1.0 -. 1e-12) p) in
  Float.log (p /. (1.0 -. p))

(* Transformed view of the target in unconstrained space. *)
let transformed target =
  let grad =
    match target.Target.grad_log_density with
    | Some g -> g
    | None -> invalid_arg "Hmc.run: target has no gradient"
  in
  match target.Target.support with
  | Target.Unbounded ->
      (* The copy matters: stored draws must not alias the evolving state. *)
      (target.Target.log_density, grad, Array.copy, Array.copy)
  | Target.Unit_interval ->
      let to_p theta = Array.map sigmoid theta in
      let of_p p = Array.map logit p in
      (* One constrained-space scratch shared by the density and gradient
         closures: both fully consume it before returning (the target never
         retains its argument), so the integrator's per-step transform costs
         zero allocation.  [sigmoid] is inlined by hand — without flambda
         the call would box on every element. *)
      let scratch = Array.make target.Target.dim 0.0 in
      let fill_p theta =
        for i = 0 to Array.length theta - 1 do
          let x = Array.unsafe_get theta i in
          Array.unsafe_set scratch i
            (if x >= 0.0 then 1.0 /. (1.0 +. Float.exp (-.x))
             else begin
               let e = Float.exp x in
               e /. (1.0 +. e)
             end)
        done
      in
      let log_density theta =
        fill_p theta;
        let jacobian = { k = 0.0 } in
        for i = 0 to Array.length theta - 1 do
          let pi = Array.unsafe_get scratch i in
          jacobian.k <-
            jacobian.k +. Float.log (Float.max 1e-300 (pi *. (1.0 -. pi)))
        done;
        target.Target.log_density scratch +. jacobian.k
      in
      let grad_theta theta =
        fill_p theta;
        let g = grad scratch in
        (* Chain rule + Jacobian term, in place on the fresh gradient. *)
        for i = 0 to Array.length g - 1 do
          let pi = Array.unsafe_get scratch i in
          Array.unsafe_set g i
            ((Array.unsafe_get g i *. pi *. (1.0 -. pi))
            +. 1.0
            -. (2.0 *. pi))
        done;
        g
      in
      (log_density, grad_theta, to_p, of_p)

let run ~rng ?init ?(initial_step = 0.05) ?(leapfrog_steps = 15) ?(thin = 1)
    ?resume ?control ~n_samples ~burn_in target =
  if thin <= 0 then invalid_arg "Hmc.run: thin must be positive";
  let dim = target.Target.dim in
  let log_density, grad, to_constrained, of_constrained =
    transformed target
  in
  let rng =
    match resume with Some s -> Rng.of_state s.s_rng | None -> rng
  in
  let theta =
    match resume with
    | Some s ->
        if Array.length s.s_position <> dim then
          invalid_arg "Hmc.run: resume state dimension mismatch";
        Array.copy s.s_position
    | None -> (
        match init with
        | Some p -> (
            match target.Target.support with
            | Target.Unit_interval -> of_constrained p
            | Target.Unbounded -> Array.copy p)
        | None -> Array.make dim 0.0)
  in
  let step =
    ref (match resume with Some s -> s.s_step | None -> initial_step)
  in
  let kept = Chain.Builder.create ~dim ~capacity:n_samples in
  (match resume with
  | Some s ->
      if Array.length s.s_kept > n_samples * dim then
        invalid_arg "Hmc.run: resume state has more draws than n_samples";
      (match Chain.Builder.load_flat kept s.s_kept with
      | () -> ()
      | exception Invalid_argument _ ->
          invalid_arg "Hmc.run: resume state dimension mismatch")
  | None -> ());
  let accepted_post = ref 0 and proposed_post = ref 0 in
  let accept_window = ref 0 in
  (match resume with
  | Some s ->
      accepted_post := s.s_accepted_post;
      proposed_post := s.s_proposed_post;
      accept_window := s.s_accept_window
  | None -> ());
  let window = 10 in
  let iter_idx =
    ref (match resume with Some s -> s.s_iter | None -> 0)
  in
  let current_lp =
    match resume with
    | Some s -> ref s.s_log_post
    | None ->
        let lp = log_density theta in
        if not (Float.is_finite lp) then
          failwith
            (Printf.sprintf
               "Hmc.run: non-finite log-density (%g) at the initial point — \
                the target is broken or the initializer lies outside its \
                support"
               lp);
        ref lp
  in
  let snapshot () =
    {
      s_iter = !iter_idx;
      s_rng = Rng.state rng;
      s_position = Array.copy theta;
      s_step = !step;
      s_log_post = !current_lp;
      s_accept_window = !accept_window;
      s_kept = Chain.Builder.flat_prefix kept;
      s_accepted_post = !accepted_post;
      s_proposed_post = !proposed_post;
    }
  in
  (* Scratch arena: the integrator state is three buffers reused across
     iterations (blit, not copy), so one iteration's array traffic is the
     gradient evaluations, not bookkeeping copies. *)
  let momentum = Array.make dim 0.0 in
  let q = Array.make dim 0.0 in
  let m = Array.make dim 0.0 in
  (* Left-to-right, matching the historical [Array.fold_left] exactly. *)
  let kinetic (v : float array) =
    let acc = { k = 0.0 } in
    for i = 0 to dim - 1 do
      let x = Array.unsafe_get v i in
      acc.k <- acc.k +. (x *. x)
    done;
    0.5 *. acc.k
  in
  let finished = ref (Chain.Builder.count kept >= n_samples) in
  while not !finished do
    let in_burn_in = !iter_idx < burn_in in
    (* Fresh Gaussian momentum, unit mass matrix; same draw order as the
       historical [Array.init]. *)
    for i = 0 to dim - 1 do
      momentum.(i) <- Dist.normal rng ~mu:0.0 ~sigma:1.0
    done;
    let h0 = kinetic momentum -. !current_lp in
    Array.blit theta 0 q 0 dim;
    Array.blit momentum 0 m 0 dim;
    let eps = !step in
    (* Leapfrog: half momentum, full position, ..., half momentum. *)
    let g = ref (grad q) in
    for _ = 1 to leapfrog_steps do
      for i = 0 to dim - 1 do
        m.(i) <- m.(i) +. (0.5 *. eps *. !g.(i))
      done;
      for i = 0 to dim - 1 do
        q.(i) <- q.(i) +. (eps *. m.(i))
      done;
      g := grad q;
      for i = 0 to dim - 1 do
        m.(i) <- m.(i) +. (0.5 *. eps *. !g.(i))
      done
    done;
    let lp1 = log_density q in
    let h1 = kinetic m -. lp1 in
    let log_alpha = h0 -. h1 in
    let accept =
      Float.is_finite lp1
      && (log_alpha >= 0.0 || Rng.float rng < Float.exp log_alpha)
    in
    if not in_burn_in then incr proposed_post;
    if accept then begin
      Array.blit q 0 theta 0 dim;
      current_lp := lp1;
      if in_burn_in then incr accept_window else incr accepted_post
    end;
    if in_burn_in && (!iter_idx + 1) mod window = 0 then begin
      let observed = float_of_int !accept_window /. float_of_int window in
      let rate = 1.0 /. Float.sqrt (float_of_int (!iter_idx + 1)) in
      step := !step *. Float.exp (rate *. (observed -. 0.75));
      step := Float.max 1e-4 (Float.min 1.0 !step);
      accept_window := 0
    end;
    if not in_burn_in then begin
      let post = !iter_idx - burn_in in
      if post mod thin = 0 && Chain.Builder.count kept < n_samples then
        Chain.Builder.push kept (to_constrained theta)
    end;
    incr iter_idx;
    if Chain.Builder.count kept >= n_samples then finished := true;
    match control with
    | Some f -> f ~sweep:!iter_idx ~state:snapshot
    | None -> ()
  done;
  let acceptance =
    if !proposed_post = 0 then 0.0
    else float_of_int !accepted_post /. float_of_int !proposed_post
  in
  { chain = Chain.Builder.to_chain kept; acceptance; step_size = !step }
