(** Sample storage for MCMC runs.

    Draws are stored in one flat row-major [float array] ([length × dim]):
    a single unboxed block instead of one boxed row per draw.  Use
    {!value} / {!for_all_values} for allocation-free element access in hot
    loops and {!get} / {!marginal} when a fresh array is wanted. *)

type t

val of_samples : float array array -> t
(** Copies an [n_samples × dim] matrix (row = one posterior draw) into flat
    storage.  The input is not retained: callers may mutate it afterwards
    without affecting the chain.
    @raise Invalid_argument on an empty or ragged matrix. *)

val of_flat : dim:int -> float array -> t
(** [of_flat ~dim data] wraps row-major [data] (length a positive multiple
    of [dim]) without copying; the caller must not mutate [data] afterwards.
    @raise Invalid_argument on an empty array, a non-positive [dim], or a
    length that does not divide into rows. *)

val length : t -> int
val dim : t -> int

val get : t -> int -> float array
(** [get t k] is a fresh copy of the k-th draw.
    @raise Invalid_argument when [k] is out of bounds. *)

val value : t -> int -> int -> float
(** [value t k i] is coordinate [i] of draw [k] without allocating — the
    accessor hot loops (pinpointing, predictive checks) should use.
    @raise Invalid_argument when either index is out of bounds. *)

val marginal : t -> int -> float array
(** [marginal t i] extracts the i-th coordinate across all draws — the
    marginal posterior sample for one AS. *)

val map_draws : t -> (float array -> 'a) -> 'a array
(** Apply a function to every draw (each receives a fresh row copy); used
    e.g. to compute per-draw argmax for the pinpointing step. *)

val for_all_values : (float -> bool) -> t -> bool
(** [for_all_values f t] is [true] when [f] holds for every stored value;
    allocation-free (used by the chain health check). *)

val thin : t -> int -> t
(** [thin t k] keeps every k-th draw.  The result owns its storage — unlike
    the historical row-sharing implementation, mutating one chain's storage
    can never leak into the other.
    @raise Invalid_argument when [k <= 0] (a zero stride would divide by
    zero; a negative one would loop). *)

val prefix : t -> int -> t
(** [prefix t n] is the first [n] draws.  Shares nothing with [t] unless
    [n = length t] (then it is [t] itself) — used by the convergence-gate
    scan over retained-draw prefixes.
    @raise Invalid_argument when [n <= 0] or [n > length t]. *)

val equal : t -> t -> bool
(** Bit-for-bit equality: every draw compared by IEEE bit pattern
    ([Int64.bits_of_float]), so [-0.] ≠ [0.] and NaNs compare equal to
    themselves.  This is the equality the checkpoint/resume guarantee is
    stated in. *)

val concat : t list -> t
(** Concatenate chains of equal dimension in one allocation (linear in the
    total draw count, unlike a repeated-{!append} fold).
    @raise Invalid_argument on an empty list or a dimension mismatch. *)

val append : t -> t -> t
(** Concatenate two chains of equal dimension. *)

(** Pre-sized flat accumulator the samplers blit kept draws into.  One
    buffer allocation up front replaces one row allocation plus copy per
    kept draw, and {!Builder.to_chain} hands the buffer to the chain
    without copying when it is exactly full. *)
module Builder : sig
  type chain := t
  type t

  val create : dim:int -> capacity:int -> t
  (** @raise Invalid_argument when [dim <= 0] or [capacity <= 0]. *)

  val count : t -> int
  (** Draws pushed (or loaded) so far. *)

  val dim : t -> int

  val push : t -> float array -> unit
  (** Blit one draw into the next slot.
      @raise Invalid_argument on a dimension mismatch, a full builder, or a
      builder already converted with {!to_chain}. *)

  val flat_prefix : t -> float array
  (** Fresh flat copy of the draws kept so far ([count × dim] values) — the
      checkpoint snapshot payload.  One copy, not the historical
      copy-of-copies. *)

  val load_flat : t -> float array -> unit
  (** Restore draws saved by {!flat_prefix}, replacing any current content.
      @raise Invalid_argument when the length does not divide into rows or
      exceeds the capacity. *)

  val to_chain : t -> chain
  (** Seal the builder into a chain.  Zero-copy when exactly full
      ([count = capacity]); the builder is unusable afterwards.
      @raise Invalid_argument on an empty builder or a second call. *)
end
