(** Sample storage for MCMC runs. *)

type t

val of_samples : float array array -> t
(** Takes ownership of a [n_samples × dim] matrix (row = one posterior
    draw).
    @raise Invalid_argument on an empty or ragged matrix. *)

val length : t -> int
val dim : t -> int

val get : t -> int -> float array
(** [get t k] is the k-th draw (not copied; treat as read-only).
    @raise Invalid_argument when [k] is out of bounds. *)

val marginal : t -> int -> float array
(** [marginal t i] extracts the i-th coordinate across all draws — the
    marginal posterior sample for one AS. *)

val map_draws : t -> (float array -> 'a) -> 'a array
(** Apply a function to every draw; used e.g. to compute per-draw argmax for
    the pinpointing step. *)

val thin : t -> int -> t
(** [thin t k] keeps every k-th draw.
    @raise Invalid_argument when [k <= 0] (a zero stride would divide by
    zero; a negative one would loop). *)

val equal : t -> t -> bool
(** Bit-for-bit equality: every draw compared by IEEE bit pattern
    ([Int64.bits_of_float]), so [-0.] ≠ [0.] and NaNs compare equal to
    themselves.  This is the equality the checkpoint/resume guarantee is
    stated in. *)

val concat : t list -> t
(** Concatenate chains of equal dimension in one allocation (linear in the
    total draw count, unlike a repeated-{!append} fold).
    @raise Invalid_argument on an empty list or a dimension mismatch. *)

val append : t -> t -> t
(** Concatenate two chains of equal dimension. *)
