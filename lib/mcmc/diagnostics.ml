module Summary = Because_stats.Summary

let autocorrelation xs lag =
  let n = Array.length xs in
  if lag < 0 then invalid_arg "Diagnostics.autocorrelation: negative lag";
  if n < lag + 2 then 0.0
  else begin
    let m = Summary.mean xs in
    let denom = ref 0.0 in
    Array.iter
      (fun x ->
        let d = x -. m in
        denom := !denom +. (d *. d))
      xs;
    if !denom = 0.0 then 0.0
    else begin
      let num = ref 0.0 in
      for i = 0 to n - lag - 1 do
        num := !num +. ((xs.(i) -. m) *. (xs.(i + lag) -. m))
      done;
      !num /. !denom
    end
  end

let effective_sample_size xs =
  let n = Array.length xs in
  if n < 4 then float_of_int n
  else begin
    (* Geyer initial positive sequence over paired lags. *)
    let rec sum_pairs k acc =
      if 2 * k + 1 >= n / 2 then acc
      else begin
        let pair =
          autocorrelation xs ((2 * k) + 1) +. autocorrelation xs ((2 * k) + 2)
        in
        if pair <= 0.0 then acc else sum_pairs (k + 1) (acc +. pair)
      end
    in
    let rho1 = autocorrelation xs 1 in
    let tail = sum_pairs 0 0.0 in
    let tau = 1.0 +. (2.0 *. Float.max 0.0 rho1) +. (2.0 *. tail) in
    let tau = Float.max 1.0 tau in
    float_of_int n /. tau
  end

(* Potential scale reduction from per-chain means and variances over [n]
   draws each — the shared tail of every r-hat variant below, so the array
   and flat-chain paths are numerically identical by construction. *)
let psr ~n means vars =
  let m = Array.length means in
  let w = Summary.mean vars in
  let grand = Summary.mean means in
  let b =
    float_of_int n
    *. (Array.fold_left
          (fun acc mu ->
            let d = mu -. grand in
            acc +. (d *. d))
          0.0 means
       /. float_of_int (m - 1))
  in
  if w <= 0.0 then 1.0
  else begin
    let var_plus =
      ((float_of_int (n - 1) /. float_of_int n) *. w)
      +. (b /. float_of_int n)
    in
    Float.sqrt (var_plus /. w)
  end

let r_hat chains =
  let m = Array.length chains in
  if m < 2 then invalid_arg "Diagnostics.r_hat: need at least two chains";
  let n = Array.length chains.(0) in
  Array.iter
    (fun c ->
      if Array.length c <> n then
        invalid_arg "Diagnostics.r_hat: unequal chain lengths")
    chains;
  if n < 2 then 1.0
  else
    psr ~n (Array.map Summary.mean chains) (Array.map Summary.variance chains)

let split_r_hat xs =
  let n = Array.length xs in
  if n < 4 then 1.0
  else begin
    let half = n / 2 in
    let first = Array.sub xs 0 half in
    let second = Array.sub xs (n - half) half in
    r_hat [| first; second |]
  end

(* --- allocation-free variants over flat chain storage ---

   Mean and variance replicate [Summary.mean] / [Summary.variance]
   (left-to-right sums, n-1 divisor) over a draw window of one coordinate,
   so the flat-chain r-hats return bit-identical values to extracting the
   marginal and calling the array versions — without materialising a
   marginal array per coordinate per chain. *)

type facc = { mutable acc : float }

let window_mean chain i ~pos ~len =
  let a = { acc = 0.0 } in
  for k = pos to pos + len - 1 do
    a.acc <- a.acc +. Chain.value chain k i
  done;
  a.acc /. float_of_int len

let window_variance chain i ~pos ~len =
  if len < 2 then 0.0
  else begin
    let m = window_mean chain i ~pos ~len in
    let a = { acc = 0.0 } in
    for k = pos to pos + len - 1 do
      let d = Chain.value chain k i -. m in
      a.acc <- a.acc +. (d *. d)
    done;
    a.acc /. float_of_int (len - 1)
  end

let r_hat_coord chains i =
  let m = Array.length chains in
  if m < 2 then
    invalid_arg "Diagnostics.r_hat_coord: need at least two chains";
  let n = Chain.length chains.(0) in
  Array.iter
    (fun c ->
      if Chain.length c <> n then
        invalid_arg "Diagnostics.r_hat_coord: unequal chain lengths")
    chains;
  if n < 2 then 1.0
  else
    psr ~n
      (Array.map (fun c -> window_mean c i ~pos:0 ~len:n) chains)
      (Array.map (fun c -> window_variance c i ~pos:0 ~len:n) chains)

let split_r_hat_coord chain i =
  let n = Chain.length chain in
  if n < 4 then 1.0
  else begin
    let half = n / 2 in
    psr ~n:half
      [| window_mean chain i ~pos:0 ~len:half;
         window_mean chain i ~pos:(n - half) ~len:half |]
      [| window_variance chain i ~pos:0 ~len:half;
         window_variance chain i ~pos:(n - half) ~len:half |]
  end

let summary_line ~name xs =
  Printf.sprintf "%-12s mean=%8.4f sd=%8.4f ess=%8.1f split_rhat=%6.3f" name
    (Summary.mean xs) (Summary.std xs) (effective_sample_size xs)
    (split_r_hat xs)
