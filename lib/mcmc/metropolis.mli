(** Metropolis–Hastings samplers (§3.2 of the paper).

    Two proposal schemes are provided:

    - {!run_single_site}: a sweep updates one coordinate at a time with a
      reflected Gaussian random walk.  When the target supplies a stateful
      cache ([Target.make_cache]) the sampler drives it — deltas reuse the
      cached per-path sufficient statistics and accepted moves are committed
      incrementally; otherwise it falls back to [log_density_delta], and
      finally to full recomputation.  This is what makes 500+-dimensional
      tomography posteriors practical.
    - {!run_vector}: a classic full-vector Gaussian random walk, useful for
      low-dimensional or generic targets.

    Both adapt their step size(s) during burn-in (Robbins–Monro towards the
    standard optimal acceptance rates: 0.44 single-site, 0.234 vector) and
    freeze them afterwards, preserving detailed balance for the retained
    draws. *)

type result = {
  chain : Chain.t;           (** Post burn-in, thinned draws. *)
  acceptance : float;        (** Post burn-in acceptance rate. *)
  step_sizes : float array;  (** Frozen proposal scales. *)
}

type state = {
  s_sweep : int;                 (** Completed sweeps so far. *)
  s_rng : string;                (** Exact RNG stream position ({!Because_stats.Rng.state}). *)
  s_current : float array;       (** Current point. *)
  s_steps : float array;         (** Per-coordinate proposal scales. *)
  s_log_post : float;            (** Log density at [s_current], exactly as accumulated. *)
  s_accept_window : int array;   (** Burn-in adaptation window counters. *)
  s_kept : float array;
      (** Retained draws so far, flat row-major ([kept × dim] values) —
          the layout {!Chain.Builder.flat_prefix} produces. *)
  s_accepted_post : int;
  s_proposed_post : int;
  s_cache : float array option;
      (** Incremental cache state ([Target.cached_state]) when the target
          has one — carried verbatim because rebuilt statistics differ in
          the last ulp. *)
}
(** Complete between-sweeps state of {!run_single_site}.  Resuming from a
    snapshot replays the identical trajectory: same draws, same adapted
    steps, same acceptance counters.  The record is transparent so the
    checkpoint layer can serialize it without this module knowing about
    on-disk formats. *)

val run_single_site :
  rng:Because_stats.Rng.t ->
  ?init:float array ->
  ?initial_step:float ->
  ?thin:int ->
  ?resume:state ->
  ?control:(sweep:int -> state:(unit -> state) -> unit) ->
  n_samples:int ->
  burn_in:int ->
  Target.t ->
  result
(** [run_single_site ~rng ~n_samples ~burn_in target] draws [n_samples]
    retained samples after [burn_in] adaptation sweeps.  [init] defaults to
    the centre of the support.

    [resume] continues a previous run from its saved {!state} — bit-for-bit,
    as if it had never stopped; [rng] and [init] are then ignored in favour
    of the saved stream and point.  [control] is invoked after every
    completed sweep with a lazy state thunk; supervisors use it to enforce
    budgets (raise to abort — exceptions propagate untouched) and to decide
    when to checkpoint.  The thunk allocates only when called.
    @raise Invalid_argument when [thin <= 0] or a [resume] state does not
    match the target (dimension or cache-shape mismatch).
    @raise Failure when the log-density is non-finite at the initial point
    (a broken target or an initializer outside the support) — instead of
    silently propagating NaN through every acceptance test. *)

val run_vector :
  rng:Because_stats.Rng.t ->
  ?init:float array ->
  ?initial_step:float ->
  ?thin:int ->
  n_samples:int ->
  burn_in:int ->
  Target.t ->
  result
(** Full-vector variant; same initial-point and [thin] guards as
    {!run_single_site}.  Not resumable (nothing in the pipeline runs it
    long enough to checkpoint). *)

val reflect_unit : float -> float
(** Reflect a proposal into [\[0, 1\]] (symmetric, so the MH ratio needs no
    proposal correction).  Exposed for the property tests. *)
