(** Metropolis–Hastings samplers (§3.2 of the paper).

    Two proposal schemes are provided:

    - {!run_single_site}: a sweep updates one coordinate at a time with a
      reflected Gaussian random walk.  When the target supplies a stateful
      cache ([Target.make_cache]) the sampler drives it — deltas reuse the
      cached per-path sufficient statistics and accepted moves are committed
      incrementally; otherwise it falls back to [log_density_delta], and
      finally to full recomputation.  This is what makes 500+-dimensional
      tomography posteriors practical.
    - {!run_vector}: a classic full-vector Gaussian random walk, useful for
      low-dimensional or generic targets.

    Both adapt their step size(s) during burn-in (Robbins–Monro towards the
    standard optimal acceptance rates: 0.44 single-site, 0.234 vector) and
    freeze them afterwards, preserving detailed balance for the retained
    draws. *)

type result = {
  chain : Chain.t;           (** Post burn-in, thinned draws. *)
  acceptance : float;        (** Post burn-in acceptance rate. *)
  step_sizes : float array;  (** Frozen proposal scales. *)
}

val run_single_site :
  rng:Because_stats.Rng.t ->
  ?init:float array ->
  ?initial_step:float ->
  ?thin:int ->
  n_samples:int ->
  burn_in:int ->
  Target.t ->
  result
(** [run_single_site ~rng ~n_samples ~burn_in target] draws [n_samples]
    retained samples after [burn_in] adaptation sweeps.  [init] defaults to
    the centre of the support.
    @raise Failure when the log-density is non-finite at the initial point
    (a broken target or an initializer outside the support) — instead of
    silently propagating NaN through every acceptance test. *)

val run_vector :
  rng:Because_stats.Rng.t ->
  ?init:float array ->
  ?initial_step:float ->
  ?thin:int ->
  n_samples:int ->
  burn_in:int ->
  Target.t ->
  result
(** Full-vector variant; same initial-point guard as {!run_single_site}. *)

val reflect_unit : float -> float
(** Reflect a proposal into [\[0, 1\]] (symmetric, so the MH ratio needs no
    proposal correction).  Exposed for the property tests. *)
