(** Hamiltonian Monte Carlo (§3.2 of the paper).

    States are proposed by integrating Hamiltonian dynamics — leapfrog steps
    through the potential −log posterior with Gaussian momenta — then accepted
    with a Metropolis update on the total energy.  This yields distant,
    multidimensional moves that escape the local modes single-site samplers
    can get stuck near.

    For targets on the unit box the sampler runs in logit space: with
    pᵢ = σ(θᵢ) the transformed log density is
    log P(p) + Σᵢ log(pᵢ(1−pᵢ)) (the change-of-variables Jacobian), whose
    gradient adds the (1 − 2pᵢ) Jacobian term.  Draws are mapped back to p
    before being stored, so the returned chain always lives in the original
    parametrisation. *)

type result = {
  chain : Chain.t;       (** Post burn-in draws in the original space. *)
  acceptance : float;    (** Post burn-in trajectory acceptance rate. *)
  step_size : float;     (** Frozen leapfrog step size. *)
}

type state = {
  s_iter : int;
  s_rng : string;
  s_position : float array;
      (** Current point in the {e unconstrained} (logit) space. *)
  s_step : float;
  s_log_post : float;
  s_accept_window : int;
  s_kept : float array;
      (** Retained draws so far, flat row-major ([kept × dim] values). *)
  s_accepted_post : int;
  s_proposed_post : int;
}
(** Complete between-iterations state of {!run}; same contract as
    {!Metropolis.state} — resuming replays the identical trajectory. *)

val run :
  rng:Because_stats.Rng.t ->
  ?init:float array ->
  ?initial_step:float ->
  ?leapfrog_steps:int ->
  ?thin:int ->
  ?resume:state ->
  ?control:(sweep:int -> state:(unit -> state) -> unit) ->
  n_samples:int ->
  burn_in:int ->
  Target.t ->
  result
(** [run ~rng ~n_samples ~burn_in target] requires [target.grad_log_density].
    [leapfrog_steps] defaults to 15 and, like [grid] for Gibbs, must match
    the original run when resuming.  The step size adapts towards a 0.75
    acceptance rate during burn-in.  [resume]/[control] follow the
    {!Metropolis.run_single_site} contract.  Raises [Invalid_argument] if
    the target has no gradient, [thin <= 0], or a [resume] state has the
    wrong dimension.
    @raise Failure when the log-density is non-finite at the initial point
    (a broken target or an initializer outside the support). *)

val sigmoid : float -> float
val logit : float -> float
(** The constrained ↔ unconstrained maps, exposed for tests. *)
