(** Gibbs sampling — the "naive" computational-Bayes baseline.

    The paper (§1, §8) notes that computational Bayesian methods were often
    discarded in favour of heuristics because naive approaches such as Gibbs
    sampling are computationally costly, and that prior tomography work
    ([14, 29]) only ever tried Gibbs.  This module implements it so the claim
    can be measured: each coordinate is resampled from its full conditional
    P(pᵢ ∣ p₋ᵢ, D), approximated on a fine grid (the conditional has no
    closed form under the path-product likelihood, so exact inversion needs a
    per-coordinate density sweep — which is precisely where the cost lives).

    One Gibbs sweep costs [grid] single-site density evaluations per
    coordinate versus one for Metropolis–Hastings, and mixes no better — the
    `ablations` bench quantifies the ESS-per-work gap against MH and HMC. *)

type result = {
  chain : Chain.t;
  acceptance : float;
      (** Fraction of sweeps (burn-in included) in which at least one
          coordinate landed in a different grid cell than it occupied
          before the sweep.  Gibbs proposals are never {e rejected} in the
          Metropolis–Hastings sense, so this measures mobility — how often
          a full conditional sweep actually moved the state — and is the
          comparable "did the chain move" number next to MH/HMC acceptance
          rates.  Intra-cell jitter does not count as movement.  1.0 means
          every sweep moved; values near 0 flag a chain frozen on the
          grid. *)
  grid : int;
}

type state = {
  s_sweep : int;
  s_rng : string;
  s_current : float array;
  s_kept : float array;
      (** Retained draws so far, flat row-major ([kept × dim] values). *)
  s_moved_sweeps : int;
  s_cache : float array option;
}
(** Complete between-sweeps state of {!run}; same contract as
    {!Metropolis.state} — resuming replays the identical trajectory. *)

val run :
  rng:Because_stats.Rng.t ->
  ?init:float array ->
  ?grid:int ->
  ?thin:int ->
  ?resume:state ->
  ?control:(sweep:int -> state:(unit -> state) -> unit) ->
  n_samples:int ->
  burn_in:int ->
  Target.t ->
  result
(** [run ~rng ~n_samples ~burn_in target] requires a target on the unit box.
    [grid] (default 64) is the number of conditional-density evaluation
    points per coordinate update.  Uses [target.log_density_delta] when
    available, the full density otherwise.  [resume]/[control] follow the
    {!Metropolis.run_single_site} contract (note: [grid] must match the
    original run — it is part of the trajectory, not of the saved state).
    @raise Invalid_argument when [thin <= 0], [grid < 4], the target is not
    on the unit box, or a [resume] state does not match the target. *)
