type support = Unit_interval | Unbounded

type cache = {
  cached_delta : int -> float -> float;
  cached_commit : int -> float -> unit;
  cached_state : unit -> float array;
  cached_restore : float array -> unit;
}

type t = {
  dim : int;
  support : support;
  log_density : float array -> float;
  grad_log_density : (float array -> float array) option;
  log_density_delta : (float array -> int -> float -> float) option;
  make_cache : (float array -> cache) option;
}

let create ?grad ?delta ?cache ~dim ~support log_density =
  if dim <= 0 then invalid_arg "Target.create: dim must be positive";
  { dim; support; log_density; grad_log_density = grad;
    log_density_delta = delta; make_cache = cache }

(* Generic cache built from the stateless pieces: keeps its own copy of the
   point and evaluates deltas with [log_density_delta] (or a full recompute).
   Correct for any target, fast only when a real [delta] exists — model
   implementations should supply a bespoke [?cache] instead. *)
let default_cache t p0 =
  let point = Array.copy p0 in
  let lp = ref (t.log_density point) in
  (* Scratch proposal buffer: equal to [point] between calls, so a delta
     costs one store + one restore instead of a full [Array.copy]. *)
  let scratch = Array.copy point in
  let delta =
    match t.log_density_delta with
    | Some d -> fun i v -> d point i v
    | None ->
        fun i v ->
          scratch.(i) <- v;
          let d = t.log_density scratch -. !lp in
          scratch.(i) <- point.(i);
          d
  in
  let commit i v =
    lp := !lp +. delta i v;
    point.(i) <- v;
    scratch.(i) <- v
  in
  let dim = Array.length point in
  let cached_state () = Array.append point [| !lp |] in
  let cached_restore s =
    if Array.length s <> dim + 1 then
      invalid_arg "Target.default_cache: saved cache state has wrong size";
    Array.blit s 0 point 0 dim;
    Array.blit s 0 scratch 0 dim;
    lp := s.(dim)
  in
  { cached_delta = delta; cached_commit = commit; cached_state;
    cached_restore }

let cache_at t p0 =
  match t.make_cache with Some mk -> mk p0 | None -> default_cache t p0

let with_coordinate p i v =
  let p' = Array.copy p in
  p'.(i) <- v;
  p'

let check_gradient t ~at ~eps ~tol =
  match t.grad_log_density with
  | None -> Error "target has no gradient"
  | Some grad ->
      let g = grad at in
      let rec check i =
        if i = t.dim then Ok ()
        else begin
          let plus = with_coordinate at i (at.(i) +. eps) in
          let minus = with_coordinate at i (at.(i) -. eps) in
          let fd = (t.log_density plus -. t.log_density minus) /. (2.0 *. eps) in
          let err = Float.abs (fd -. g.(i)) in
          let scale = Float.max 1.0 (Float.abs fd) in
          if err /. scale > tol then
            Error
              (Printf.sprintf
                 "gradient mismatch at coordinate %d: analytic=%.8g fd=%.8g" i
                 g.(i) fd)
          else check (i + 1)
        end
      in
      check 0
