type support = Unit_interval | Unbounded

type t = {
  dim : int;
  support : support;
  log_density : float array -> float;
  grad_log_density : (float array -> float array) option;
  log_density_delta : (float array -> int -> float -> float) option;
}

let create ?grad ?delta ~dim ~support log_density =
  if dim <= 0 then invalid_arg "Target.create: dim must be positive";
  { dim; support; log_density; grad_log_density = grad;
    log_density_delta = delta }

let with_coordinate p i v =
  let p' = Array.copy p in
  p'.(i) <- v;
  p'

let check_gradient t ~at ~eps ~tol =
  match t.grad_log_density with
  | None -> Error "target has no gradient"
  | Some grad ->
      let g = grad at in
      let rec check i =
        if i = t.dim then Ok ()
        else begin
          let plus = with_coordinate at i (at.(i) +. eps) in
          let minus = with_coordinate at i (at.(i) -. eps) in
          let fd = (t.log_density plus -. t.log_density minus) /. (2.0 *. eps) in
          let err = Float.abs (fd -. g.(i)) in
          let scale = Float.max 1.0 (Float.abs fd) in
          if err /. scale > tol then
            Error
              (Printf.sprintf
                 "gradient mismatch at coordinate %d: analytic=%.8g fd=%.8g" i
                 g.(i) fd)
          else check (i + 1)
        end
      in
      check 0
