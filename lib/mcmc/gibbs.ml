module Rng = Because_stats.Rng
module Dist = Because_stats.Dist
module Special = Because_stats.Special

type result = { chain : Chain.t; acceptance : float; grid : int }

(* Complete between-sweeps state of [run]; see Metropolis.state for the
   design notes — the shape differs only in the Gibbs-specific counters. *)
type state = {
  s_sweep : int;
  s_rng : string;
  s_current : float array;
  s_kept : float array; (* flat row-major kept draws, kept × dim *)
  s_moved_sweeps : int;
  s_cache : float array option;
}

let run ~rng ?init ?(grid = 64) ?(thin = 1) ?resume ?control ~n_samples
    ~burn_in target =
  (match target.Target.support with
  | Target.Unit_interval -> ()
  | Target.Unbounded ->
      invalid_arg "Gibbs.run: requires a unit-interval target");
  if grid < 4 then invalid_arg "Gibbs.run: grid too coarse";
  if thin <= 0 then invalid_arg "Gibbs.run: thin must be positive";
  let dim = target.Target.dim in
  let rng =
    match resume with Some s -> Rng.of_state s.s_rng | None -> rng
  in
  let current =
    match resume with
    | Some s ->
        if Array.length s.s_current <> dim then
          invalid_arg "Gibbs.run: resume state dimension mismatch";
        Array.copy s.s_current
    | None -> (
        match init with Some p -> Array.copy p | None -> Array.make dim 0.5)
  in
  (* Grid cell centres on (0, 1). *)
  let points =
    Array.init grid (fun k -> (float_of_int k +. 0.5) /. float_of_int grid)
  in
  let log_weights = Array.make grid 0.0 in
  (* Prefer the stateful protocol: every grid point is evaluated relative to
     the same cached sufficient statistics, and the chosen value is committed
     once per coordinate.  Fall back to the stateless delta, then to a full
     recompute. *)
  let cache = Option.map (fun mk -> mk current) target.Target.make_cache in
  (match resume with
  | Some s -> (
      match (cache, s.s_cache) with
      | Some c, Some saved -> c.Target.cached_restore saved
      | None, None -> ()
      | Some _, None ->
          invalid_arg
            "Gibbs.run: resume state lacks the cache state this target \
             requires"
      | None, Some _ ->
          invalid_arg
            "Gibbs.run: resume state carries a cache state but the target \
             has no cache")
  | None -> ());
  let delta =
    match cache with
    | Some c -> fun _ i v -> c.Target.cached_delta i v
    | None -> (
        match target.Target.log_density_delta with
        | Some d -> d
        | None ->
            fun p i v ->
              let p' = Target.with_coordinate p i v in
              target.Target.log_density p' -. target.Target.log_density p)
  in
  (* Grid cell containing a value — the movement criterion below compares
     cells, not jittered values, so intra-cell jitter does not count as a
     state change. *)
  let cell_of v =
    max 0 (min (grid - 1) (int_of_float (v *. float_of_int grid)))
  in
  (* Scratch arena: one weights buffer reused for every coordinate update
     instead of a fresh [Array.map] per update (grid words × dim × sweeps
     of garbage in the old code). *)
  let weights = Array.make grid 0.0 in
  let resample_coordinate i =
    (* Conditional density on the grid, relative to the current value —
       the per-point delta makes the grid sweep O(grid · paths-through-i). *)
    for k = 0 to grid - 1 do
      log_weights.(k) <- delta current i points.(k)
    done;
    let log_norm = Special.log_sum_exp log_weights in
    for k = 0 to grid - 1 do
      weights.(k) <- Float.exp (log_weights.(k) -. log_norm)
    done;
    let old_cell = cell_of current.(i) in
    let cell = Dist.categorical rng weights in
    (* Jitter within the chosen cell to avoid a lattice-valued chain. *)
    let width = 1.0 /. float_of_int grid in
    let v = points.(cell) +. ((Rng.float rng -. 0.5) *. width) in
    let v = Float.max 1e-9 (Float.min (1.0 -. 1e-9) v) in
    (match cache with Some c -> c.Target.cached_commit i v | None -> ());
    current.(i) <- v;
    cell <> old_cell
  in
  let kept = Chain.Builder.create ~dim ~capacity:n_samples in
  (match resume with
  | Some s ->
      if Array.length s.s_kept > n_samples * dim then
        invalid_arg "Gibbs.run: resume state has more draws than n_samples";
      (match Chain.Builder.load_flat kept s.s_kept with
      | () -> ()
      | exception Invalid_argument _ ->
          invalid_arg "Gibbs.run: resume state dimension mismatch")
  | None -> ());
  let sweep_idx =
    ref (match resume with Some s -> s.s_sweep | None -> 0)
  in
  let moved_sweeps =
    ref (match resume with Some s -> s.s_moved_sweeps | None -> 0)
  in
  let snapshot () =
    {
      s_sweep = !sweep_idx;
      s_rng = Rng.state rng;
      s_current = Array.copy current;
      s_kept = Chain.Builder.flat_prefix kept;
      s_moved_sweeps = !moved_sweeps;
      s_cache = Option.map (fun c -> c.Target.cached_state ()) cache;
    }
  in
  let finished = ref (Chain.Builder.count kept >= n_samples) in
  while not !finished do
    let moved = ref false in
    for i = 0 to dim - 1 do
      if resample_coordinate i then moved := true
    done;
    if !moved then incr moved_sweeps;
    if !sweep_idx >= burn_in then begin
      let post = !sweep_idx - burn_in in
      if post mod thin = 0 && Chain.Builder.count kept < n_samples then
        Chain.Builder.push kept current
    end;
    incr sweep_idx;
    if Chain.Builder.count kept >= n_samples then finished := true;
    match control with
    | Some f -> f ~sweep:!sweep_idx ~state:snapshot
    | None -> ()
  done;
  let acceptance =
    if !sweep_idx = 0 then 0.0
    else float_of_int !moved_sweeps /. float_of_int !sweep_idx
  in
  { chain = Chain.Builder.to_chain kept; acceptance; grid }
