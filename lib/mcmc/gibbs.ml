module Rng = Because_stats.Rng
module Dist = Because_stats.Dist
module Special = Because_stats.Special

type result = { chain : Chain.t; acceptance : float; grid : int }

let run ~rng ?init ?(grid = 64) ?(thin = 1) ~n_samples ~burn_in target =
  (match target.Target.support with
  | Target.Unit_interval -> ()
  | Target.Unbounded ->
      invalid_arg "Gibbs.run: requires a unit-interval target");
  if grid < 4 then invalid_arg "Gibbs.run: grid too coarse";
  let dim = target.Target.dim in
  let current =
    match init with Some p -> Array.copy p | None -> Array.make dim 0.5
  in
  (* Grid cell centres on (0, 1). *)
  let points =
    Array.init grid (fun k -> (float_of_int k +. 0.5) /. float_of_int grid)
  in
  let log_weights = Array.make grid 0.0 in
  (* Prefer the stateful protocol: every grid point is evaluated relative to
     the same cached sufficient statistics, and the chosen value is committed
     once per coordinate.  Fall back to the stateless delta, then to a full
     recompute. *)
  let cache = Option.map (fun mk -> mk current) target.Target.make_cache in
  let delta =
    match cache with
    | Some c -> fun _ i v -> c.Target.cached_delta i v
    | None -> (
        match target.Target.log_density_delta with
        | Some d -> d
        | None ->
            fun p i v ->
              let p' = Target.with_coordinate p i v in
              target.Target.log_density p' -. target.Target.log_density p)
  in
  (* Grid cell containing a value — the movement criterion below compares
     cells, not jittered values, so intra-cell jitter does not count as a
     state change. *)
  let cell_of v =
    max 0 (min (grid - 1) (int_of_float (v *. float_of_int grid)))
  in
  let resample_coordinate i =
    (* Conditional density on the grid, relative to the current value —
       the per-point delta makes the grid sweep O(grid · paths-through-i). *)
    for k = 0 to grid - 1 do
      log_weights.(k) <- delta current i points.(k)
    done;
    let log_norm = Special.log_sum_exp log_weights in
    let weights =
      Array.map (fun lw -> Float.exp (lw -. log_norm)) log_weights
    in
    let old_cell = cell_of current.(i) in
    let cell = Dist.categorical rng weights in
    (* Jitter within the chosen cell to avoid a lattice-valued chain. *)
    let width = 1.0 /. float_of_int grid in
    let v = points.(cell) +. ((Rng.float rng -. 0.5) *. width) in
    let v = Float.max 1e-9 (Float.min (1.0 -. 1e-9) v) in
    (match cache with Some c -> c.Target.cached_commit i v | None -> ());
    current.(i) <- v;
    cell <> old_cell
  in
  let kept = Array.make n_samples [||] in
  let kept_count = ref 0 in
  let sweep_idx = ref 0 in
  let moved_sweeps = ref 0 in
  while !kept_count < n_samples do
    let moved = ref false in
    for i = 0 to dim - 1 do
      if resample_coordinate i then moved := true
    done;
    if !moved then incr moved_sweeps;
    if !sweep_idx >= burn_in then begin
      let post = !sweep_idx - burn_in in
      if post mod thin = 0 && !kept_count < n_samples then begin
        kept.(!kept_count) <- Array.copy current;
        incr kept_count
      end
    end;
    incr sweep_idx
  done;
  let acceptance =
    if !sweep_idx = 0 then 0.0
    else float_of_int !moved_sweeps /. float_of_int !sweep_idx
  in
  { chain = Chain.of_samples kept; acceptance; grid }
