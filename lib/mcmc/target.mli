(** Inference targets: unnormalised log posterior densities.

    A target bundles everything a sampler may exploit: the joint log density,
    optionally its gradient (for HMC), and optionally a cheap single-site
    update rule (for single-site Metropolis–Hastings — the tomography
    likelihood factorises over paths, so changing one coordinate only touches
    the paths through that AS). *)

type support =
  | Unit_interval  (** Every coordinate lives on (0, 1), e.g. damping proportions. *)
  | Unbounded      (** Coordinates on ℝ. *)

type t = {
  dim : int;
  support : support;
  log_density : float array -> float;
      (** Unnormalised log posterior at a point.  May return [neg_infinity]
          outside the support. *)
  grad_log_density : (float array -> float array) option;
      (** Gradient of [log_density]; required by {!Hmc}. *)
  log_density_delta : (float array -> int -> float -> float) option;
      (** [delta p i v] = log_density with coordinate [i] set to [v] minus
          log_density at [p].  Enables O(paths-through-i) single-site MH. *)
}

val create :
  ?grad:(float array -> float array) ->
  ?delta:(float array -> int -> float -> float) ->
  dim:int ->
  support:support ->
  (float array -> float) ->
  t

val with_coordinate : float array -> int -> float -> float array
(** Functional single-coordinate update (copies). *)

val check_gradient :
  t -> at:float array -> eps:float -> tol:float -> (unit, string) result
(** Finite-difference validation of [grad_log_density]; used by the tests. *)
