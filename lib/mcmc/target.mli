(** Inference targets: unnormalised log posterior densities.

    A target bundles everything a sampler may exploit: the joint log density,
    optionally its gradient (for HMC), and optionally a cheap single-site
    update rule (for single-site Metropolis–Hastings — the tomography
    likelihood factorises over paths, so changing one coordinate only touches
    the paths through that AS). *)

type support =
  | Unit_interval  (** Every coordinate lives on (0, 1), e.g. damping proportions. *)
  | Unbounded      (** Coordinates on ℝ. *)

type cache = {
  cached_delta : int -> float -> float;
      (** [cached_delta i v] = log density with coordinate [i] set to [v]
          minus the log density at the cache's current point. *)
  cached_commit : int -> float -> unit;
      (** [cached_commit i v] accepts the proposal: moves the cache's current
          point to coordinate [i] = [v] and updates the sufficient
          statistics.  Rejections need no call — they are free. *)
  cached_state : unit -> float array;
      (** Exact internal state as a flat float vector (current point plus
          the incrementally-accumulated sufficient statistics).  Incremental
          statistics drift from freshly-recomputed ones in the last ulp, so
          checkpoints must carry this vector rather than rebuild — that is
          what keeps a resumed chain bit-for-bit on the original
          trajectory. *)
  cached_restore : float array -> unit;
      (** Inverse of [cached_state] for the same cache implementation:
          overwrite the internal state with a previously exported vector.
          Pure derived quantities are recomputed from the restored state.
          Raises [Invalid_argument] when the vector has the wrong size. *)
}
(** Stateful single-site evaluation protocol.  A cache owns a private copy
    of the current point plus whatever per-observation sufficient statistics
    make [cached_delta] O(observations-through-i) with O(1) work per
    observation (for the tomography likelihood: the per-path running sums
    Sⱼ = Σ ln qᵢ).  Single-site samplers drive it as
    [delta → (accept? commit : nothing)]. *)

type t = {
  dim : int;
  support : support;
  log_density : float array -> float;
      (** Unnormalised log posterior at a point.  May return [neg_infinity]
          outside the support. *)
  grad_log_density : (float array -> float array) option;
      (** Gradient of [log_density]; required by {!Hmc}. *)
  log_density_delta : (float array -> int -> float -> float) option;
      (** [delta p i v] = log_density with coordinate [i] set to [v] minus
          log_density at [p].  Enables O(paths-through-i) single-site MH.
          Stateless reference implementation; kept alongside [make_cache]
          so the cached fast path can always be cross-checked. *)
  make_cache : (float array -> cache) option;
      (** [make_cache p0] builds a stateful evaluator positioned at [p0].
          When present, {!Metropolis.run_single_site} and {!Gibbs.run}
          prefer it over [log_density_delta]. *)
}

val create :
  ?grad:(float array -> float array) ->
  ?delta:(float array -> int -> float -> float) ->
  ?cache:(float array -> cache) ->
  dim:int ->
  support:support ->
  (float array -> float) ->
  t

val cache_at : t -> float array -> cache
(** The target's own cache when it has one, else a generic fallback that
    tracks the point and answers deltas via [log_density_delta] (or a full
    recompute).  Always safe; only as fast as the pieces it wraps. *)

val with_coordinate : float array -> int -> float -> float array
(** Functional single-coordinate update (copies). *)

val check_gradient :
  t -> at:float array -> eps:float -> tol:float -> (unit, string) result
(** Finite-difference validation of [grad_log_density]; used by the tests. *)
