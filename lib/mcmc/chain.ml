type t = float array array

let of_samples samples =
  if Array.length samples = 0 then invalid_arg "Chain.of_samples: empty";
  let dim = Array.length samples.(0) in
  Array.iteri
    (fun k row ->
      if Array.length row <> dim then
        invalid_arg
          (Printf.sprintf
             "Chain.of_samples: ragged matrix (row %d has %d columns, row 0 \
              has %d)"
             k (Array.length row) dim))
    samples;
  samples

let length t = Array.length t
let dim t = Array.length t.(0)

let get t k =
  if k < 0 || k >= Array.length t then
    invalid_arg
      (Printf.sprintf "Chain.get: draw %d out of bounds (length %d)" k
         (Array.length t));
  t.(k)
let marginal t i = Array.map (fun draw -> draw.(i)) t
let map_draws t f = Array.map f t

let thin t k =
  if k <= 0 then invalid_arg "Chain.thin: k must be positive";
  let n = (Array.length t + k - 1) / k in
  Array.init n (fun i -> t.(i * k))

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun ra rb ->
         Array.length ra = Array.length rb
         && Array.for_all2
              (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
              ra rb)
       a b

let concat chains =
  match chains with
  | [] -> invalid_arg "Chain.concat: empty list"
  | first :: rest ->
      let d = dim first in
      List.iteri
        (fun k c ->
          if dim c <> d then
            invalid_arg
              (Printf.sprintf
                 "Chain.concat: dimension mismatch (chain %d has dim %d, \
                  chain 0 has %d)"
                 (k + 1) (dim c) d))
        rest;
      Array.concat chains

let append a b = concat [ a; b ]
