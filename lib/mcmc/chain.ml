(* Flat row-major sample storage.

   Draws live in one [len × dim] float array instead of an array of boxed
   rows: a chain of 1000 draws over 500 ASs is a single unboxed block, not
   1001 heap objects.  Samplers blit into a pre-sized {!Builder} instead of
   [Array.copy]-ing a fresh row per kept draw, which is where the bulk of
   the per-draw allocation of the old representation went. *)

type t = {
  dim : int;
  len : int;
  data : float array; (* row-major: draw k occupies [k*dim, (k+1)*dim) *)
}

let of_flat ~dim data =
  if dim <= 0 then invalid_arg "Chain.of_flat: dim must be positive";
  let n = Array.length data in
  if n = 0 then invalid_arg "Chain.of_flat: empty";
  if n mod dim <> 0 then
    invalid_arg
      (Printf.sprintf
         "Chain.of_flat: %d values do not divide into rows of dim %d" n dim);
  { dim; len = n / dim; data }

let of_samples samples =
  if Array.length samples = 0 then invalid_arg "Chain.of_samples: empty";
  let dim = Array.length samples.(0) in
  Array.iteri
    (fun k row ->
      if Array.length row <> dim then
        invalid_arg
          (Printf.sprintf
             "Chain.of_samples: ragged matrix (row %d has %d columns, row 0 \
              has %d)"
             k (Array.length row) dim))
    samples;
  if dim = 0 then invalid_arg "Chain.of_samples: zero-dimensional draws";
  let len = Array.length samples in
  let data = Array.make (len * dim) 0.0 in
  Array.iteri (fun k row -> Array.blit row 0 data (k * dim) dim) samples;
  { dim; len; data }

let length t = t.len
let dim t = t.dim

let get t k =
  if k < 0 || k >= t.len then
    invalid_arg
      (Printf.sprintf "Chain.get: draw %d out of bounds (length %d)" k t.len);
  Array.sub t.data (k * t.dim) t.dim

let value t k i =
  if k < 0 || k >= t.len || i < 0 || i >= t.dim then
    invalid_arg
      (Printf.sprintf
         "Chain.value: (%d, %d) out of bounds (length %d, dim %d)" k i t.len
         t.dim);
  Array.unsafe_get t.data ((k * t.dim) + i)

let marginal t i =
  if i < 0 || i >= t.dim then
    invalid_arg
      (Printf.sprintf "Chain.marginal: coordinate %d out of bounds (dim %d)" i
         t.dim);
  Array.init t.len (fun k -> Array.unsafe_get t.data ((k * t.dim) + i))

let map_draws t f = Array.init t.len (fun k -> f (get t k))

let for_all_values f t =
  let ok = ref true in
  let n = Array.length t.data in
  let i = ref 0 in
  while !ok && !i < n do
    if not (f (Array.unsafe_get t.data !i)) then ok := false;
    incr i
  done;
  !ok

let thin t k =
  if k <= 0 then invalid_arg "Chain.thin: k must be positive";
  let n = (t.len + k - 1) / k in
  let data = Array.make (n * t.dim) 0.0 in
  for r = 0 to n - 1 do
    Array.blit t.data (r * k * t.dim) data (r * t.dim) t.dim
  done;
  { dim = t.dim; len = n; data }

let prefix t n =
  if n <= 0 || n > t.len then
    invalid_arg
      (Printf.sprintf "Chain.prefix: %d out of bounds (length %d)" n t.len);
  if n = t.len then t
  else { dim = t.dim; len = n; data = Array.sub t.data 0 (n * t.dim) }

let equal a b =
  a.dim = b.dim && a.len = b.len
  && begin
       let n = Array.length a.data in
       let same = ref true in
       let i = ref 0 in
       while !same && !i < n do
         if
           Int64.bits_of_float (Array.unsafe_get a.data !i)
           <> Int64.bits_of_float (Array.unsafe_get b.data !i)
         then same := false;
         incr i
       done;
       !same
     end

let concat chains =
  match chains with
  | [] -> invalid_arg "Chain.concat: empty list"
  | first :: rest ->
      let d = first.dim in
      List.iteri
        (fun k c ->
          if c.dim <> d then
            invalid_arg
              (Printf.sprintf
                 "Chain.concat: dimension mismatch (chain %d has dim %d, \
                  chain 0 has %d)"
                 (k + 1) c.dim d))
        rest;
      let total = List.fold_left (fun acc c -> acc + c.len) 0 chains in
      let data = Array.make (total * d) 0.0 in
      let off = ref 0 in
      List.iter
        (fun c ->
          Array.blit c.data 0 data !off (c.len * d);
          off := !off + (c.len * d))
        chains;
      { dim = d; len = total; data }

let append a b = concat [ a; b ]

module Builder = struct
  type t = {
    b_dim : int;
    capacity : int;
    buf : float array; (* capacity × b_dim, rows [0, count) are live *)
    mutable count : int;
    mutable sealed : bool;
  }

  let create ~dim ~capacity =
    if dim <= 0 then invalid_arg "Chain.Builder.create: dim must be positive";
    if capacity <= 0 then
      invalid_arg "Chain.Builder.create: capacity must be positive";
    { b_dim = dim; capacity; buf = Array.make (capacity * dim) 0.0;
      count = 0; sealed = false }

  let count b = b.count
  let dim b = b.b_dim

  let check_open b who =
    if b.sealed then
      invalid_arg (who ^ ": builder already converted to a chain")

  let push b row =
    check_open b "Chain.Builder.push";
    if Array.length row <> b.b_dim then
      invalid_arg "Chain.Builder.push: row has the wrong dimension";
    if b.count >= b.capacity then invalid_arg "Chain.Builder.push: full";
    Array.blit row 0 b.buf (b.count * b.b_dim) b.b_dim;
    b.count <- b.count + 1

  let flat_prefix b = Array.sub b.buf 0 (b.count * b.b_dim)

  let load_flat b flat =
    check_open b "Chain.Builder.load_flat";
    let n = Array.length flat in
    if n mod b.b_dim <> 0 then
      invalid_arg
        "Chain.Builder.load_flat: flat draws do not divide into rows";
    let rows = n / b.b_dim in
    if rows > b.capacity then
      invalid_arg "Chain.Builder.load_flat: more draws than capacity";
    Array.blit flat 0 b.buf 0 n;
    b.count <- rows

  let to_chain b =
    check_open b "Chain.Builder.to_chain";
    if b.count = 0 then invalid_arg "Chain.Builder.to_chain: empty";
    b.sealed <- true;
    if b.count = b.capacity then
      (* The buffer is full: hand it over without copying.  [sealed] makes
         sure the builder can never mutate it afterwards. *)
      { dim = b.b_dim; len = b.count; data = b.buf }
    else { dim = b.b_dim; len = b.count; data = flat_prefix b }
end
