open Because_bgp
module Sc = Because_scenario
module Supervise = Because_recover.Supervise

type estimate = {
  asn : Asn.t;
  mean : float;
  lo : float;
  hi : float;
  category : int;
  damping : bool;
}

type health =
  | Queued
  | Running
  | Interrupted
  | Done of Supervise.status

let health_label = function
  | Queued -> "queued"
  | Running -> "running"
  | Interrupted -> "interrupted"
  | Done s -> Supervise.status_label s

type entry = {
  spec : Spec.t;
  seq : int;
  mutable health : health;
  mutable attempts : int;
  mutable estimates : estimate array;
  mutable queue_wait_s : float;
  mutable epoch : int;
  mutable warm : bool;
  mutable gate_sweeps : int option;
  mutable obs_count : int;
}

type t = { by_id : (string, entry) Hashtbl.t }

let create () = { by_id = Hashtbl.create 16 }

let add t (spec : Spec.t) ~seq =
  if Hashtbl.mem t.by_id spec.Spec.id then
    invalid_arg ("Store.add: duplicate id " ^ spec.Spec.id);
  let entry =
    { spec; seq; health = Queued; attempts = 0; estimates = [||];
      queue_wait_s = 0.0; epoch = 1; warm = false; gate_sweeps = None;
      obs_count = 0 }
  in
  Hashtbl.replace t.by_id spec.Spec.id entry;
  entry

let find t ~id = Hashtbl.find_opt t.by_id id

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.by_id []
  |> List.sort (fun a b -> Int.compare a.seq b.seq)

let labels = [ "queued"; "running"; "interrupted"; "healthy"; "degraded";
               "insufficient" ]

let counts t =
  let es = entries t in
  List.map
    (fun l ->
      (l, List.length (List.filter (fun e -> health_label e.health = l) es)))
    labels

let rollup t =
  let done_ =
    List.filter_map
      (fun e -> match e.health with Done s -> Some (e, s) | _ -> None)
      (entries t)
  in
  let tagged f =
    List.concat_map
      (fun (e, s) ->
        List.map
          (fun r -> e.spec.Spec.id ^ ": " ^ r)
          (f s))
      done_
  in
  let insufficient =
    tagged (function Supervise.Insufficient rs -> rs | _ -> [])
  in
  let degraded = tagged (function Supervise.Degraded rs -> rs | _ -> []) in
  if insufficient <> [] then Supervise.Insufficient insufficient
  else if degraded <> [] then Supervise.Degraded degraded
  else Supervise.Healthy

let estimates_of_result (result : Because.Infer.result) ~categories =
  if result.Because.Infer.runs = [] then [||]
  else
    let marginals = Because.Posterior.combined result in
    Array.map
      (fun (m : Because.Posterior.marginal) ->
        let cat =
          match List.assoc_opt m.Because.Posterior.asn categories with
          | Some c -> c
          | None -> Because.Categorize.C3
        in
        { asn = m.Because.Posterior.asn;
          mean = m.Because.Posterior.mean;
          lo = m.Because.Posterior.hdpi.lo;
          hi = m.Because.Posterior.hdpi.hi;
          category = Because.Categorize.to_int cat;
          damping = Because.Categorize.damping cat })
      marginals

let estimates_of_outcome (outcome : Sc.Campaign.outcome) =
  match outcome.Sc.Campaign.result with
  | None -> [||]
  | Some result ->
      estimates_of_result result
        ~categories:outcome.Sc.Campaign.categories

(* Reports must be bit-for-bit reproducible across drain/kill/resume, so
   every float is printed at full precision and nothing run-dependent
   (attempts, wall-clock, queue position) appears. *)
let report entry =
  let b = Buffer.create 1024 in
  Buffer.add_string b "# because service report\n";
  Buffer.add_string b ("spec: " ^ Spec.to_line entry.spec ^ "\n");
  let status =
    match entry.health with
    | Done s -> s
    | Queued | Running | Interrupted ->
        invalid_arg "Store.report: campaign not finished"
  in
  Buffer.add_string b ("status: " ^ Supervise.status_label status ^ "\n");
  List.iter
    (fun r -> Buffer.add_string b ("reason: " ^ r ^ "\n"))
    (Supervise.status_reasons status);
  (* Stream-only lines: a non-streaming report keeps its exact historical
     bytes.  All three values are deterministic functions of the spec, the
     epoch and the observation file, so resumed reports still reproduce. *)
  if entry.spec.Spec.obs <> None then begin
    Buffer.add_string b
      (Printf.sprintf "epoch: %d %s\n" entry.epoch
         (if entry.warm then "warm" else "cold"));
    Buffer.add_string b
      (Printf.sprintf "observations: %d\n" entry.obs_count);
    match entry.gate_sweeps with
    | Some n -> Buffer.add_string b (Printf.sprintf "gate_sweeps: %d\n" n)
    | None -> ()
  end;
  Buffer.add_string b
    (Printf.sprintf "ases: %d\n" (Array.length entry.estimates));
  let flagged =
    Array.to_list entry.estimates
    |> List.filter (fun e -> e.damping)
    |> List.map (fun e -> Asn.to_string e.asn)
  in
  Buffer.add_string b
    (Printf.sprintf "flagged: %s\n" (String.concat "," flagged));
  Array.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "as %s mean=%.17g lo=%.17g hi=%.17g cat=%d%s\n"
           (Asn.to_string e.asn) e.mean e.lo e.hi e.category
           (if e.damping then " DAMPING" else "")))
    entry.estimates;
  Buffer.contents b

(* Ids are validated to [A-Za-z0-9._-] and reasons come from our own code,
   but escape anyway so the JSON stays well-formed no matter what. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t ~draining ~limit ~depth =
  let b = Buffer.create 2048 in
  let status = rollup t in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"because-service/1\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"rollup\": \"%s\",\n" (Supervise.status_label status));
  Buffer.add_string b
    (Printf.sprintf "  \"draining\": %b,\n  \"queue\": { \"depth\": %d, \"limit\": %d },\n"
       draining depth limit);
  Buffer.add_string b "  \"counts\": {";
  Buffer.add_string b
    (String.concat ", "
       (List.map
          (fun (l, n) -> Printf.sprintf "\"%s\": %d" l n)
          (counts t)));
  Buffer.add_string b "},\n  \"campaigns\": [\n";
  let es = entries t in
  List.iteri
    (fun i e ->
      let flagged =
        Array.to_list e.estimates
        |> List.filter (fun est -> est.damping)
        |> List.map (fun est -> "\"" ^ Asn.to_string est.asn ^ "\"")
      in
      let reasons =
        match e.health with
        | Done s ->
            List.map
              (fun r -> "\"" ^ json_escape r ^ "\"")
              (Supervise.status_reasons s)
        | _ -> []
      in
      (* Stream campaigns carry extra fields; classic entries keep the
         historical object shape byte-for-byte. *)
      let stream =
        if e.spec.Spec.obs = None then ""
        else
          Printf.sprintf ", \"epoch\": %d, \"warm\": %b, \
                          \"observations\": %d%s"
            e.epoch e.warm e.obs_count
            (match e.gate_sweeps with
            | Some n -> Printf.sprintf ", \"gate_sweeps\": %d" n
            | None -> "")
      in
      Buffer.add_string b
        (Printf.sprintf
           "    { \"id\": \"%s\", \"seq\": %d, \"health\": \"%s\", \
            \"attempts\": %d, \"ases\": %d, \"flagged\": [%s], \
            \"reasons\": [%s]%s }%s\n"
           (json_escape e.spec.Spec.id) e.seq (health_label e.health)
           e.attempts (Array.length e.estimates)
           (String.concat ", " flagged)
           (String.concat ", " reasons) stream
           (if i < List.length es - 1 then "," else "")))
    es;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let matrix t =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "%-20s %-12s %8s %6s  %s\n" "campaign" "health"
       "attempts" "ases" "flagged");
  List.iter
    (fun e ->
      let flagged =
        Array.to_list e.estimates
        |> List.filter (fun est -> est.damping)
        |> List.map (fun est -> Asn.to_string est.asn)
      in
      Buffer.add_string b
        (Printf.sprintf "%-20s %-12s %8d %6d  %s\n" e.spec.Spec.id
           (health_label e.health) e.attempts (Array.length e.estimates)
           (String.concat "," flagged)))
    (entries t);
  Buffer.contents b
