open Because_bgp
module Sc = Because_scenario
module Supervise = Because_recover.Supervise
module Checkpoint = Because_recover.Checkpoint
module Codec = Because_recover.Codec
module Io = Because_recover.Io
module Policy = Because_resilience.Policy
module Retry = Because_resilience.Retry
module Tel = Because_telemetry.Registry

type config = {
  state_dir : string;
  limit : int;
  jobs : int;
  campaign_jobs : int;
  max_attempts : int;
  retry_backoff_s : float;
  compact_every : int;
  every_sweeps : int option;
  chain_deadline_s : float option;
  sweep_budget : int option;
  telemetry : Because_telemetry.Registry.t;
  kill_after_saves : int option;
  chaos : (id:string -> attempt:int -> int option) option;
}

let default_config ~state_dir =
  { state_dir; limit = 16; jobs = 1; campaign_jobs = 1; max_attempts = 3;
    retry_backoff_s = 0.01; compact_every = 8; every_sweeps = Some 25;
    chain_deadline_s = None; sweep_budget = None; telemetry = Tel.disabled;
    kill_after_saves = None; chaos = None }

(* One policy value drives every retry loop in the service — campaign
   supervision below, checkpoint writes inside the stores, report/status
   writes in [atomic_write].  The jitter seed is derived per label so
   concurrent campaigns don't retry in lockstep, deterministically. *)
let retry_policy cfg ~label =
  Policy.make ~base_s:cfg.retry_backoff_s ~cap_s:1.0
    ~max_attempts:cfg.max_attempts ~jitter:0.25 ~seed:(Hashtbl.hash label) ()

type verdict = Completed | Drained | Killed

type metrics = {
  m_submitted : Tel.Counter.handle;
  m_rejected : Tel.Counter.handle;
  m_completed : Tel.Counter.handle;
  m_retries : Tel.Counter.handle;
  m_interrupted : Tel.Counter.handle;
  m_depth : Tel.Gauge.handle;
  m_running : Tel.Gauge.handle;
  m_queue_wait : Tel.Histogram.handle;
}

type t = {
  cfg : config;
  mutex : Mutex.t;
  cond : Condition.t;
  queue : Spec.t Admission.t;
  store : Store.t;
  qstore : Checkpoint.t;
  submit_ns : (string, int64) Hashtbl.t;
  mutable workers : unit Domain.t list;
  mutable running_n : int;
  mutable stop_idle : bool;
  mutable drain_requested : bool;
  mutable killed : bool;
  kill_count : int Atomic.t;
  kill_tripped : bool Atomic.t;
  kill_switch : (unit -> bool) option Atomic.t;
  mutable notes : string list;  (* newest first; reversed on read *)
  m : metrics;
  generation : int Atomic.t;
      (* Bumped on every observable store/queue mutation; the HTTP query
         plane renders each document at most once per generation and
         serves the cached bytes lock-free in between. *)
}

(* ---------------------------------------------------------------- paths *)

let queue_dir cfg = Filename.concat cfg.state_dir "queue.d"
let campaigns_dir cfg = Filename.concat cfg.state_dir "campaigns"
let reports_dir cfg = Filename.concat cfg.state_dir "reports"
let campaign_dir cfg ~id = Filename.concat (campaigns_dir cfg) id

let report_path t ~id =
  Filename.concat (reports_dir t.cfg) (id ^ ".report")

let status_path t = Filename.concat t.cfg.state_dir "status.json"
let metrics_path t = Filename.concat t.cfg.state_dir "metrics.prom"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* Reports and status documents ride the same injectable I/O shim and
   retry policy as checkpoints: a transient disk fault costs a backoff,
   not a missing report. *)
let write_retry = Policy.make ~base_s:0.002 ~cap_s:0.05 ~max_attempts:3 ()

let atomic_write path content =
  Retry.run ~policy:write_retry
    ~retryable:(function Sys_error _ -> true | _ -> false)
    ~label:("service:" ^ Filename.basename path)
    (fun () ->
      Io.write_file_atomic ~dir:(Filename.dirname path) ~file:path content)

(* ------------------------------------------------------- queue snapshot *)

let queue_fingerprint = "because-service-queue/1"
let queue_key = "queue"

(* Version 1 is the PR-6 layout; version 2 appends the streaming fields
   (epoch, warm, gate, observation count) per entry.  A queue with no
   streaming entries still writes version 1, byte-for-byte the historical
   snapshot, so mixed-version service generations interoperate. *)
let encode_queue t =
  let entries = Store.entries t.store in
  let has_stream =
    List.exists (fun (e : Store.entry) -> e.Store.spec.Spec.obs <> None)
      entries
  in
  let version = if has_stream then 2 else 1 in
  let w = Codec.writer () in
  Codec.int w version;
  Codec.list w
    (fun w (e : Store.entry) ->
      Codec.string w (Spec.to_line e.Store.spec);
      Codec.int w e.Store.seq;
      let tag, reasons =
        match e.Store.health with
        | Store.Done Supervise.Healthy -> (1, [])
        | Store.Done (Supervise.Degraded rs) -> (2, rs)
        | Store.Done (Supervise.Insufficient rs) -> (3, rs)
        | Store.Queued | Store.Running | Store.Interrupted -> (0, [])
      in
      Codec.u8 w tag;
      Codec.list w Codec.string reasons;
      Codec.list w
        (fun w (est : Store.estimate) ->
          Codec.int w (Asn.to_int est.Store.asn);
          Codec.float w est.Store.mean;
          Codec.float w est.Store.lo;
          Codec.float w est.Store.hi;
          Codec.int w est.Store.category;
          Codec.bool w est.Store.damping)
        (Array.to_list e.Store.estimates);
      if version >= 2 then begin
        Codec.int w e.Store.epoch;
        Codec.bool w e.Store.warm;
        Codec.option w Codec.int e.Store.gate_sweeps;
        Codec.int w e.Store.obs_count
      end)
    entries;
  Codec.contents w

type decoded = {
  d_spec : Spec.t;
  d_seq : int;
  d_done : Supervise.status option;  (* None = pending *)
  d_estimates : Store.estimate array;
  d_epoch : int;
  d_warm : bool;
  d_gate_sweeps : int option;
  d_obs_count : int;
}

let decode_queue payload =
  let r = Codec.reader payload in
  let version = Codec.read_int r in
  if version <> 1 && version <> 2 then
    raise (Codec.Malformed (Printf.sprintf "queue snapshot v%d" version));
  let entries =
    Codec.read_list r (fun r ->
        let line = Codec.read_string r in
        let seq = Codec.read_int r in
        let tag = Codec.read_u8 r in
        let reasons = Codec.read_list r Codec.read_string in
        let estimates =
          Codec.read_list r (fun r ->
              let asn = Asn.of_int (Codec.read_int r) in
              let mean = Codec.read_float r in
              let lo = Codec.read_float r in
              let hi = Codec.read_float r in
              let category = Codec.read_int r in
              let damping = Codec.read_bool r in
              { Store.asn; mean; lo; hi; category; damping })
          |> Array.of_list
        in
        let d_epoch, d_warm, d_gate_sweeps, d_obs_count =
          if version >= 2 then
            let epoch = Codec.read_int r in
            let warm = Codec.read_bool r in
            let gate = Codec.read_option r Codec.read_int in
            let obs = Codec.read_int r in
            (epoch, warm, gate, obs)
          else (1, false, None, 0)
        in
        let d_done =
          match tag with
          | 0 -> None
          | 1 -> Some Supervise.Healthy
          | 2 -> Some (Supervise.Degraded reasons)
          | 3 -> Some (Supervise.Insufficient reasons)
          | n -> raise (Codec.Malformed (Printf.sprintf "health tag %d" n))
        in
        match Spec.of_line line with
        | Ok d_spec ->
            { d_spec; d_seq = seq; d_done; d_estimates = estimates;
              d_epoch; d_warm; d_gate_sweeps; d_obs_count }
        | Error e -> raise (Codec.Malformed ("spec: " ^ e)))
  in
  Codec.expect_end r;
  entries

(* ----------------------------------------------------------- internals *)

(* All the helpers below assume t.mutex is held by the caller. *)

let persist_queue t = Checkpoint.save t.qstore ~key:queue_key (encode_queue t)

let write_report t (entry : Store.entry) =
  atomic_write (report_path t ~id:entry.Store.spec.Spec.id)
    (Store.report entry)

let note t msg = t.notes <- msg :: t.notes

let note_recovery t ~id recovery =
  List.iter
    (fun w -> note t (id ^ ": " ^ w))
    (Sc.Recovery.warnings recovery)

let set_gauges t =
  if Tel.is_enabled t.cfg.telemetry then begin
    Tel.Gauge.set t.m.m_depth (float_of_int (Admission.depth t.queue));
    Tel.Gauge.set t.m.m_running (float_of_int t.running_n)
  end

(* ------------------------------------------------------------- create *)

let make cfg =
  if cfg.jobs < 1 then invalid_arg "Service: jobs must be >= 1";
  if cfg.max_attempts < 1 then invalid_arg "Service: max_attempts must be >= 1";
  mkdir_p cfg.state_dir;
  mkdir_p (campaigns_dir cfg);
  mkdir_p (reports_dir cfg);
  let qstore =
    Checkpoint.open_ ~dir:(queue_dir cfg) ~fingerprint:queue_fingerprint ()
  in
  let reg = cfg.telemetry in
  let m =
    { m_submitted = Tel.Counter.v reg "service.submitted";
      m_rejected = Tel.Counter.v reg "service.rejected";
      m_completed = Tel.Counter.v reg "service.completed";
      m_retries = Tel.Counter.v reg "service.retries";
      m_interrupted = Tel.Counter.v reg "service.interrupted";
      m_depth = Tel.Gauge.v reg "service.queue_depth";
      m_running = Tel.Gauge.v reg "service.running";
      m_queue_wait = Tel.Histogram.v reg "service.queue_wait_s" }
  in
  let t =
    { cfg; mutex = Mutex.create (); cond = Condition.create ();
      queue = Admission.create ~limit:cfg.limit; store = Store.create ();
      qstore; submit_ns = Hashtbl.create 16; workers = []; running_n = 0;
      stop_idle = false; drain_requested = false; killed = false;
      kill_count = Atomic.make 0; kill_tripped = Atomic.make false;
      kill_switch = Atomic.make None; notes = []; m;
      generation = Atomic.make 0 }
  in
  (match cfg.kill_after_saves with
  | None -> ()
  | Some n ->
      Atomic.set t.kill_switch
        (Some
           (fun () ->
             Atomic.get t.kill_tripped
             ||
             if Atomic.fetch_and_add t.kill_count 1 >= n then begin
               Atomic.set t.kill_tripped true;
               true
             end
             else false)));
  t

let create cfg =
  rm_rf (queue_dir cfg);
  rm_rf (campaigns_dir cfg);
  rm_rf (reports_dir cfg);
  let t = make cfg in
  (try Sys.remove (status_path t) with Sys_error _ -> ());
  (try Sys.remove (metrics_path t) with Sys_error _ -> ());
  t

let load cfg =
  let t = make cfg in
  List.iter (fun w -> note t ("queue: " ^ w)) (Checkpoint.warnings t.qstore);
  (match Checkpoint.load t.qstore ~key:queue_key with
  | None -> ()
  | Some payload -> (
      match decode_queue payload with
      | exception Codec.Malformed e ->
          note t ("queue: snapshot discarded (malformed: " ^ e ^ ")")
      | decoded ->
          List.iter
            (fun d ->
              let entry = Store.add t.store d.d_spec ~seq:d.d_seq in
              entry.Store.epoch <- d.d_epoch;
              entry.Store.warm <- d.d_warm;
              entry.Store.gate_sweeps <- d.d_gate_sweeps;
              entry.Store.obs_count <- d.d_obs_count;
              match d.d_done with
              | Some status ->
                  entry.Store.health <- Store.Done status;
                  entry.Store.estimates <- d.d_estimates;
                  Admission.reserve t.queue ~id:d.d_spec.Spec.id;
                  (* Reports are pure functions of the stored result, so a
                     missing one is re-materialized rather than mourned. *)
                  if not (Sys.file_exists (report_path t ~id:d.d_spec.Spec.id))
                  then write_report t entry
              | None ->
                  entry.Store.health <- Store.Interrupted;
                  Admission.readmit t.queue ~seq:d.d_seq ~id:d.d_spec.Spec.id
                    d.d_spec)
            (List.sort (fun a b -> Int.compare a.d_seq b.d_seq) decoded)));
  t

let config t = t.cfg
let store t = t.store
let generation t = Atomic.get t.generation
let bump t = Atomic.incr t.generation

(* ------------------------------------------------------------- submit *)

let submit t spec =
  Mutex.lock t.mutex;
  let result =
    if t.killed || Supervise.draining () then Error Admission.Draining
    else
      match Spec.validate spec with
      | Error e -> Error (Admission.Invalid e)
      | Ok spec -> (
          let readmission =
            (* Re-submitting a completed streaming spec is not a duplicate:
               its spool has (presumably) grown, so it re-enters the queue
               as the next epoch at its original sequence number. *)
            match Store.find t.store ~id:spec.Spec.id with
            | Some entry
              when entry.Store.spec.Spec.obs <> None
                   && Spec.equal entry.Store.spec spec
                   && (match entry.Store.health with
                      | Store.Done _ -> true
                      | _ -> false) ->
                Some entry
            | _ -> None
          in
          match readmission with
          | Some entry ->
              entry.Store.health <- Store.Queued;
              entry.Store.epoch <- entry.Store.epoch + 1;
              Admission.readmit t.queue ~seq:entry.Store.seq
                ~id:spec.Spec.id spec;
              Hashtbl.replace t.submit_ns spec.Spec.id
                (Monotonic_clock.now ());
              persist_queue t;
              Ok entry.Store.seq
          | None -> (
              match Admission.admit t.queue ~id:spec.Spec.id spec with
              | Error _ as e -> e
              | Ok seq ->
                  let entry = Store.add t.store spec ~seq in
                  entry.Store.health <- Store.Queued;
                  Hashtbl.replace t.submit_ns spec.Spec.id
                    (Monotonic_clock.now ());
                  persist_queue t;
                  Ok seq))
  in
  (match result with
  | Ok _ ->
      bump t;
      if Tel.is_enabled t.cfg.telemetry then Tel.Counter.incr t.m.m_submitted
  | Error _ ->
      if Tel.is_enabled t.cfg.telemetry then Tel.Counter.incr t.m.m_rejected);
  set_gauges t;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  result

let pending t =
  Mutex.lock t.mutex;
  let d = Admission.depth t.queue in
  Mutex.unlock t.mutex;
  d

let running t =
  Mutex.lock t.mutex;
  let r = t.running_n in
  Mutex.unlock t.mutex;
  r

let draining t = t.drain_requested || Supervise.draining ()
let killed t = t.killed

(* -------------------------------------------------------- worker loop *)

let claim t =
  Mutex.lock t.mutex;
  let rec go () =
    (* The global drain flag is checked too: a signal handler can only
       safely set that flag (one atomic store), not take our mutex. *)
    if t.killed || t.drain_requested || Supervise.draining () then None
    else
      match Admission.take t.queue with
      | Some (_, id, _) ->
          let entry = Option.get (Store.find t.store ~id) in
          entry.Store.health <- Store.Running;
          t.running_n <- t.running_n + 1;
          bump t;
          (match Hashtbl.find_opt t.submit_ns id with
          | Some ns ->
              let wait =
                Int64.to_float (Int64.sub (Monotonic_clock.now ()) ns) *. 1e-9
              in
              entry.Store.queue_wait_s <- wait;
              if Tel.is_enabled t.cfg.telemetry then
                Tel.Histogram.observe t.m.m_queue_wait wait
          | None -> ());
          set_gauges t;
          Some entry
      | None ->
          if t.stop_idle then None
          else begin
            Condition.wait t.cond t.mutex;
            go ()
          end
  in
  let r = go () in
  Mutex.unlock t.mutex;
  r

let finish t (entry : Store.entry) ~status ~estimates recovery =
  Mutex.lock t.mutex;
  entry.Store.estimates <- estimates;
  entry.Store.health <- Store.Done status;
  Option.iter (note_recovery t ~id:entry.Store.spec.Spec.id) recovery;
  t.running_n <- t.running_n - 1;
  write_report t entry;
  persist_queue t;
  bump t;
  if Tel.is_enabled t.cfg.telemetry then Tel.Counter.incr t.m.m_completed;
  set_gauges t;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let interrupted t (entry : Store.entry) ~persist ~kill recovery =
  Mutex.lock t.mutex;
  if kill then t.killed <- true;
  entry.Store.health <- Store.Interrupted;
  Admission.readmit t.queue ~seq:entry.Store.seq ~id:entry.Store.spec.Spec.id
    entry.Store.spec;
  Option.iter (note_recovery t ~id:entry.Store.spec.Spec.id) recovery;
  t.running_n <- t.running_n - 1;
  (* A chaos kill leaves the queue file exactly as the last completed save
     did — a real SIGKILL would not have flushed anything either. *)
  if persist then persist_queue t;
  bump t;
  if Tel.is_enabled t.cfg.telemetry then Tel.Counter.incr t.m.m_interrupted;
  set_gauges t;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

(* --------------------------------------------------- streaming epochs *)

(* Posterior seeds live in the per-campaign epoch store ([epochs.d]) with
   a fingerprint stable across epochs: the per-epoch chain stores are
   fingerprint-pinned to one epoch's exact inputs and would quarantine
   anything older.  Every completed epoch is appended to the chain and
   folded into the compacted snapshot, so a cold start warm-starts in
   O(1) no matter how many epochs the spool accumulated; every
   [compact_every] epochs the chain itself is pruned. *)
let epoch_store t ~id =
  mkdir_p (campaign_dir t.cfg ~id);
  Epochs.open_
    ~dir:(Filename.concat (campaign_dir t.cfg ~id) "epochs.d")
    ~id

let run_stream_entry t (entry : Store.entry) =
  let id = entry.Store.spec.Spec.id in
  let policy = retry_policy t.cfg ~label:id in
  let budget =
    { Supervise.deadline_s = t.cfg.chain_deadline_s;
      max_sweeps = t.cfg.sweep_budget }
  in
  let rec attempt n =
    Mutex.lock t.mutex;
    entry.Store.attempts <- n;
    let epoch = entry.Store.epoch in
    Mutex.unlock t.mutex;
    let store = epoch_store t ~id in
    let seed =
      (* Epoch 1 is always cold, even when a stale epoch directory
         survived a state wipe. *)
      if epoch <= 1 then None else Epochs.load store
    in
    match
      Stream.run ~spec:entry.Store.spec ~seed ~telemetry:t.cfg.telemetry
        ~supervise:budget ~jobs:t.cfg.campaign_jobs ()
    with
    | Ok outcome ->
        Option.iter
          (fun s ->
            Epochs.append store s;
            if
              t.cfg.compact_every > 0
              && s.Because_recover.Seed.epoch mod t.cfg.compact_every = 0
            then Epochs.compact store ~keep:t.cfg.compact_every)
          outcome.Stream.seed;
        Mutex.lock t.mutex;
        entry.Store.warm <- seed <> None;
        entry.Store.gate_sweeps <- outcome.Stream.gate_sweeps;
        entry.Store.obs_count <- outcome.Stream.obs_count;
        Mutex.unlock t.mutex;
        finish t entry ~status:outcome.Stream.status
          ~estimates:outcome.Stream.estimates None
    | Error msg ->
        (* A missing or malformed spool is a property of the epoch, not a
           transient fault: retrying would re-read the same bytes. *)
        finish t entry ~status:(Supervise.Insufficient [ msg ])
          ~estimates:[||] None
    | exception Supervise.Drained ->
        interrupted t entry ~persist:true ~kill:false None
    | exception e ->
        let msg = Printexc.to_string e in
        Mutex.lock t.mutex;
        note t (Printf.sprintf "%s: attempt %d/%d failed: %s" id n
                  t.cfg.max_attempts msg);
        Mutex.unlock t.mutex;
        if not (Policy.retries_left policy ~attempt:n) then
          finish t entry
            ~status:
              (Supervise.Insufficient
                 [ Printf.sprintf
                     "retry budget exhausted after %d attempts (last: %s)"
                     t.cfg.max_attempts msg ])
            ~estimates:[||] None
        else if t.drain_requested then
          interrupted t entry ~persist:true ~kill:false None
        else begin
          if Tel.is_enabled t.cfg.telemetry then
            Tel.Counter.incr t.m.m_retries;
          Policy.wait policy ~attempt:n;
          attempt (n + 1)
        end
  in
  attempt 1

let run_campaign_entry t (entry : Store.entry) =
  let id = entry.Store.spec.Spec.id in
  let policy = retry_policy t.cfg ~label:id in
  let dir = campaign_dir t.cfg ~id in
  let rec attempt n =
    Mutex.lock t.mutex;
    entry.Store.attempts <- n;
    Mutex.unlock t.mutex;
    let kill_after_saves =
      match t.cfg.chaos with Some f -> f ~id ~attempt:n | None -> None
    in
    (* resume:true always: a fresh campaign has no snapshots to read, and
       everything else (prior generation, prior attempt, drained run) must
       continue rather than start over. *)
    let recovery =
      Sc.Recovery.create ~dir ~resume:true ?every_sweeps:t.cfg.every_sweeps
        ?kill_after_saves
        ?kill_switch:(Atomic.get t.kill_switch) ()
    in
    let world = Spec.world entry.Store.spec in
    let params =
      Spec.params entry.Store.spec ~world ~jobs:t.cfg.campaign_jobs
    in
    let params =
      { params with
        Sc.Campaign.telemetry = t.cfg.telemetry;
        infer_config =
          { params.Sc.Campaign.infer_config with
            Because.Infer.supervise =
              { Supervise.deadline_s = t.cfg.chain_deadline_s;
                max_sweeps = t.cfg.sweep_budget } } }
    in
    match Sc.Campaign.run ~recovery world params with
    | outcome ->
        finish t entry ~status:outcome.Sc.Campaign.status
          ~estimates:(Store.estimates_of_outcome outcome)
          (Some recovery)
    | exception Supervise.Drained ->
        interrupted t entry ~persist:true ~kill:false (Some recovery)
    | exception Sc.Recovery.Killed when Atomic.get t.kill_tripped ->
        interrupted t entry ~persist:false ~kill:true (Some recovery)
    | exception e ->
        let msg = Printexc.to_string e in
        Mutex.lock t.mutex;
        note t (Printf.sprintf "%s: attempt %d/%d failed: %s" id n
                  t.cfg.max_attempts msg);
        note_recovery t ~id recovery;
        Mutex.unlock t.mutex;
        if not (Policy.retries_left policy ~attempt:n) then
          finish t entry
            ~status:
              (Supervise.Insufficient
                 [ Printf.sprintf
                     "retry budget exhausted after %d attempts (last: %s)"
                     t.cfg.max_attempts msg ])
            ~estimates:[||] None
        else if t.drain_requested then
          interrupted t entry ~persist:true ~kill:false None
        else begin
          if Tel.is_enabled t.cfg.telemetry then
            Tel.Counter.incr t.m.m_retries;
          Policy.wait policy ~attempt:n;
          attempt (n + 1)
        end
  in
  attempt 1

let run_entry t (entry : Store.entry) =
  if entry.Store.spec.Spec.obs <> None then run_stream_entry t entry
  else run_campaign_entry t entry

let rec worker_loop t =
  match claim t with
  | None -> ()
  | Some entry ->
      run_entry t entry;
      worker_loop t

(* ---------------------------------------------------------- lifecycle *)

let start t =
  Mutex.lock t.mutex;
  if t.workers <> [] then begin
    Mutex.unlock t.mutex;
    invalid_arg "Service.start: workers already running"
  end;
  if t.killed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Service.start: service was killed; load a fresh one"
  end;
  t.stop_idle <- false;
  Mutex.unlock t.mutex;
  let workers =
    List.init t.cfg.jobs (fun _ -> Domain.spawn (fun () -> worker_loop t))
  in
  Mutex.lock t.mutex;
  t.workers <- workers;
  Mutex.unlock t.mutex

let stop_when_idle t =
  Mutex.lock t.mutex;
  t.stop_idle <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let drain t =
  Mutex.lock t.mutex;
  t.drain_requested <- true;
  Admission.set_draining t.queue true;
  bump t;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  Supervise.request_drain ()

let rollup t =
  Mutex.lock t.mutex;
  let r = Store.rollup t.store in
  Mutex.unlock t.mutex;
  r

let write_status t =
  Mutex.lock t.mutex;
  let json =
    Store.to_json t.store ~draining:t.drain_requested
      ~limit:(Admission.limit t.queue) ~depth:(Admission.depth t.queue)
  in
  let prom =
    if Tel.is_enabled t.cfg.telemetry then begin
      set_gauges t;
      Some
        (Because_telemetry.Export.to_prometheus (Tel.snapshot t.cfg.telemetry))
    end
    else None
  in
  Mutex.unlock t.mutex;
  atomic_write (status_path t) json;
  Option.iter (atomic_write (metrics_path t)) prom

(* ------------------------------------------------- query-plane snapshots *)

(* Renderers for the HTTP query plane.  Each takes the mutex for the
   duration of one render; the query layer calls them at most once per
   generation and serves cached bytes in between, so the service mutex
   never sits on the request hot path. *)

let status_json t =
  Mutex.lock t.mutex;
  let json =
    Store.to_json t.store ~draining:t.drain_requested
      ~limit:(Admission.limit t.queue) ~depth:(Admission.depth t.queue)
  in
  Mutex.unlock t.mutex;
  json

let matrix_text t =
  Mutex.lock t.mutex;
  let m = Store.matrix t.store in
  Mutex.unlock t.mutex;
  m

let metrics_prom t =
  Mutex.lock t.mutex;
  set_gauges t;
  Mutex.unlock t.mutex;
  Because_telemetry.Export.to_prometheus (Tel.snapshot t.cfg.telemetry)

let report_for t ~id =
  Mutex.lock t.mutex;
  let r =
    match Store.find t.store ~id with
    | None -> `Unknown
    | Some entry -> (
        match entry.Store.health with
        | Store.Done _ -> `Done (Store.report entry)
        | Store.Queued | Store.Running | Store.Interrupted -> `Pending)
  in
  Mutex.unlock t.mutex;
  r

let estimates_snapshot t =
  Mutex.lock t.mutex;
  let rows =
    List.concat_map
      (fun (e : Store.entry) ->
        Array.to_list e.Store.estimates
        |> List.map (fun (est : Store.estimate) ->
               ( Asn.to_int est.Store.asn,
                 Printf.sprintf
                   "{ \"campaign\": \"%s\", \"asn\": \"%s\", \"mean\": \
                    %.17g, \"lo\": %.17g, \"hi\": %.17g, \"category\": %d, \
                    \"damping\": %b }"
                   (Store.json_escape e.Store.spec.Spec.id)
                   (Asn.to_string est.Store.asn)
                   est.Store.mean est.Store.lo est.Store.hi
                   est.Store.category est.Store.damping )))
      (Store.entries t.store)
  in
  Mutex.unlock t.mutex;
  rows

let join t =
  let workers =
    Mutex.protect t.mutex (fun () ->
        let w = t.workers in
        t.workers <- [];
        w)
  in
  List.iter Domain.join workers;
  let verdict =
    if t.killed then Killed
    else if t.drain_requested || Supervise.draining () then Drained
    else Completed
  in
  write_status t;
  verdict

let run_until_idle t =
  start t;
  stop_when_idle t;
  join t

let reset_drain t =
  Mutex.lock t.mutex;
  if t.workers <> [] then begin
    Mutex.unlock t.mutex;
    invalid_arg "Service.reset_drain: join the workers first"
  end;
  t.drain_requested <- false;
  Admission.set_draining t.queue false;
  bump t;
  Mutex.unlock t.mutex;
  Supervise.clear_drain ()

let exit_code t verdict =
  match verdict with
  | Completed -> Supervise.exit_code (rollup t)
  | Drained | Killed -> 5

let warnings t =
  Mutex.lock t.mutex;
  let ns = List.rev t.notes in
  Mutex.unlock t.mutex;
  ns
