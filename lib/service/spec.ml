module Sc = Because_scenario
module Plan = Because_faults.Plan

type t = {
  id : string;
  seed : int;
  transit : int;
  stub : int;
  vantage_hosts : int;
  interval_min : float;
  cycles : int;
  faults : string;
  chains : int;
  samples : int;
  burn_in : int;
  min_path_support : int;
  obs : string option;
}

let default ~id =
  { id; seed = 42; transit = 12; stub = 30; vantage_hosts = 8;
    interval_min = 1.0; cycles = 1; faults = "none"; chains = 1;
    samples = 400; burn_in = 200; min_path_support = 1; obs = None }

let obs_ok path =
  String.length path > 0
  && String.length path <= 512
  && String.for_all (fun c -> Char.code c > 0x20 && Char.code c < 0x7f) path

let id_ok id =
  String.length id > 0
  && String.length id <= 64
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9') || c = '.' || c = '_' || c = '-')
       id

let validate t =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if not (id_ok t.id) then
    err "id %S must be 1-64 chars of [A-Za-z0-9._-]" t.id
  else if t.transit < 1 || t.stub < 1 || t.vantage_hosts < 1 then
    err "topology sizes must be positive"
  else if not (t.interval_min > 0.0) then err "interval must be positive"
  else if t.cycles < 1 then err "cycles must be >= 1"
  else if t.chains < 1 then err "chains must be >= 1"
  else if t.samples < 1 || t.burn_in < 0 then
    err "samples must be >= 1 and burn-in >= 0"
  else if t.min_path_support < 1 then err "min-path-support must be >= 1"
  else if
    match t.obs with Some path -> not (obs_ok path) | None -> false
  then
    err "obs path must be 1-512 printable non-space characters"
  else if t.faults <> "none" then
    match Plan.severity_of_string t.faults with
    | Ok _ -> Ok t
    | Error e -> Error e
  else Ok t

let severity t =
  if t.faults = "none" then None
  else
    match Plan.severity_of_string t.faults with
    | Ok s -> Some s
    | Error e -> invalid_arg ("Spec.severity: " ^ e)

(* [obs] is appended only when present: every non-streaming spec keeps its
   exact historical line, so reports and queue snapshots stay byte-for-byte
   compatible. *)
let to_line t =
  Printf.sprintf
    "id=%s seed=%d transit=%d stub=%d vantage=%d interval=%.17g cycles=%d \
     faults=%s chains=%d samples=%d burn=%d support=%d%s"
    t.id t.seed t.transit t.stub t.vantage_hosts t.interval_min t.cycles
    t.faults t.chains t.samples t.burn_in t.min_path_support
    (match t.obs with None -> "" | Some p -> " obs=" ^ p)

let of_line line =
  let ( let* ) = Result.bind in
  let int_of k v =
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "%s=%S is not an integer" k v)
  in
  let float_of k v =
    match float_of_string_opt v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "%s=%S is not a number" k v)
  in
  let fields =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  in
  let* pairs =
    List.fold_left
      (fun acc field ->
        let* acc = acc in
        match String.index_opt field '=' with
        | None -> Error (Printf.sprintf "malformed field %S (want key=value)" field)
        | Some i ->
            let k = String.sub field 0 i in
            let v = String.sub field (i + 1) (String.length field - i - 1) in
            Ok ((k, v) :: acc))
      (Ok []) fields
  in
  let* id =
    match List.assoc_opt "id" pairs with
    | Some id -> Ok id
    | None -> Error "missing required field id="
  in
  let* t =
    List.fold_left
      (fun acc (k, v) ->
        let* t = acc in
        match k with
        | "id" -> Ok t
        | "seed" -> let* n = int_of k v in Ok { t with seed = n }
        | "transit" -> let* n = int_of k v in Ok { t with transit = n }
        | "stub" -> let* n = int_of k v in Ok { t with stub = n }
        | "vantage" -> let* n = int_of k v in Ok { t with vantage_hosts = n }
        | "interval" -> let* f = float_of k v in Ok { t with interval_min = f }
        | "cycles" -> let* n = int_of k v in Ok { t with cycles = n }
        | "faults" -> Ok { t with faults = v }
        | "chains" -> let* n = int_of k v in Ok { t with chains = n }
        | "samples" -> let* n = int_of k v in Ok { t with samples = n }
        | "burn" -> let* n = int_of k v in Ok { t with burn_in = n }
        | "support" -> let* n = int_of k v in Ok { t with min_path_support = n }
        | "obs" -> Ok { t with obs = Some v }
        | _ -> Error (Printf.sprintf "unknown field %S" k))
      (Ok (default ~id)) pairs
  in
  validate t

let equal a b = a = b

let world t =
  Sc.World.build
    {
      Sc.World.default_params with
      seed = t.seed;
      n_vantage_hosts = t.vantage_hosts;
      topology =
        {
          Because_topology.Generate.default_params with
          n_transit = t.transit;
          n_stub = t.stub;
        };
    }

let params t ~world ~jobs =
  let base =
    Sc.Campaign.with_jobs ~n_chains:t.chains ~sim_jobs:1
      { (Sc.Campaign.default_params ~update_interval:(t.interval_min *. 60.0))
        with Sc.Campaign.cycles = t.cycles;
             min_path_support = t.min_path_support }
      jobs
  in
  let base =
    { base with
      Sc.Campaign.infer_config =
        { base.Sc.Campaign.infer_config with
          Because.Infer.n_samples = t.samples;
          burn_in = t.burn_in } }
  in
  match severity t with
  | None -> base
  | Some sev ->
      { base with Sc.Campaign.faults = Sc.Campaign.draw_faults world base sev }
