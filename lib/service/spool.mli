(** Spool-directory intake with the rename-into-place convention.

    Producers must write a spec to a hidden or differently-suffixed temp
    name (e.g. [.mycampaign.campaign.tmp]) and [rename(2)] it to
    [<name>.campaign] once complete — rename is atomic within a
    filesystem, so the service can never observe a truncated spec.  {!scan}
    enforces the convention from the consumer side: only plain
    [*.campaign] files whose name does not start with a dot are picked up,
    so partial writes parked under dotfile names stay invisible no matter
    how slowly they grow. *)

val eligible : string -> bool
(** Whether a directory-entry name is a completed spool file:
    ends in [.campaign] and does not start with ['.'].  Name-level only;
    {!scan} additionally filters by inode. *)

val scan : string -> string list
(** Eligible file names (not paths) in the directory, sorted for
    deterministic intake order; [\[\]] when the directory is missing.
    Zero-byte entries (created but never written) and anything that is
    not a regular file — symlinks in particular, which can alias a file
    still being written elsewhere — are skipped.  A name renamed into
    place a second time with new content is simply seen again: intake
    dedup is the service's job (streaming re-admission), not the
    scanner's. *)
