(** Spool-directory intake with the rename-into-place convention.

    Producers must write a spec to a hidden or differently-suffixed temp
    name (e.g. [.mycampaign.campaign.tmp]) and [rename(2)] it to
    [<name>.campaign] once complete — rename is atomic within a
    filesystem, so the service can never observe a truncated spec.  {!scan}
    enforces the convention from the consumer side: only plain
    [*.campaign] files whose name does not start with a dot are picked up,
    so partial writes parked under dotfile names stay invisible no matter
    how slowly they grow. *)

val eligible : string -> bool
(** Whether a directory-entry name is a completed spool file:
    ends in [.campaign] and does not start with ['.']. *)

val scan : string -> string list
(** Eligible file names (not paths) in the directory, sorted for
    deterministic intake order; [\[\]] when the directory is missing. *)
