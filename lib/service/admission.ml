type reason =
  | Queue_full of { limit : int }
  | Duplicate of { id : string }
  | Draining
  | Invalid of string

let reason_to_string = function
  | Queue_full { limit } ->
      Printf.sprintf "queue full (limit %d); resubmit later" limit
  | Duplicate { id } -> Printf.sprintf "duplicate campaign id %S" id
  | Draining -> "service is draining; not accepting new campaigns"
  | Invalid msg -> "invalid spec: " ^ msg

type 'a t = {
  lim : int;
  mutable pending : (int * string * 'a) list;  (* ascending seq *)
  seen : (string, unit) Hashtbl.t;
  mutable next_seq : int;
  mutable drain : bool;
}

let create ~limit =
  if limit < 1 then invalid_arg "Admission.create: limit must be >= 1";
  { lim = limit; pending = []; seen = Hashtbl.create 16; next_seq = 0;
    drain = false }

let depth t = List.length t.pending
let limit t = t.lim
let set_draining t b = t.drain <- b
let draining t = t.drain

let insert t seq id item =
  t.pending <-
    List.merge
      (fun (a, _, _) (b, _, _) -> Int.compare a b)
      t.pending [ (seq, id, item) ];
  if seq >= t.next_seq then t.next_seq <- seq + 1

let admit t ~id item =
  if t.drain then Error Draining
  else if Hashtbl.mem t.seen id then Error (Duplicate { id })
  else if depth t >= t.lim then Error (Queue_full { limit = t.lim })
  else begin
    let seq = t.next_seq in
    Hashtbl.replace t.seen id ();
    insert t seq id item;
    Ok seq
  end

let readmit t ~seq ~id item =
  Hashtbl.replace t.seen id ();
  insert t seq id item

let reserve t ~id =
  Hashtbl.replace t.seen id ();
  ()

let take t =
  match t.pending with
  | [] -> None
  | entry :: rest ->
      t.pending <- rest;
      Some entry
