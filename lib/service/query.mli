(** The HTTP query plane: service endpoints over a generation-stamped
    snapshot cache.

    Every high-rate document ([/status], [/matrix], [/metrics],
    [/estimates]) is rendered at most once per store {!Service.generation}:
    a request first reads the atomic generation counter, serves the cached
    bytes lock-free when they are stamped with a generation at least that
    new, and only otherwise takes the {e render} lock (never the service
    mutex on a cache hit) to re-render.  The stamp is the generation read
    {e before} rendering, so a mutation racing a render forces the next
    request to re-render — responses can lag a mutation by at most one
    in-flight render, never serve bytes older than the generation they
    advertise.

    Renders are {e single-flight}: when the cache is stale, exactly one
    request renders and every concurrent request for the same document
    coalesces onto that render's result — an overload burst cannot
    stampede the service mutex.  A coalescing request waits at most
    until its propagated deadline ({!Because_http.Request.t.deadline}),
    then sheds with [503 + Retry-After + X-Queue-Depth] instead of
    queueing invisibly.

    Every 429/503 the plane produces (admission backpressure on
    [POST /submit], shed renders) carries [Retry-After] and
    [X-Queue-Depth] headers — the depth is the admission queue's at
    refusal time.

    Responses carry the stamp in an [X-Generation] header.

    Endpoints:
    {ul
    {- [GET /status] — {!Service.status_json} (JSON);}
    {- [GET /matrix] — the live suspect matrix (plain text);}
    {- [GET /metrics] — Prometheus exposition;}
    {- [GET /estimates?asn=N] — per-AS damping estimates across campaigns
       (omit [asn] for all);}
    {- [GET /campaigns/:id/report] — 200 with the report once done, 202
       while pending, 404 for an unknown id (uncached: reports are
       low-rate and immutable once done);}
    {- [POST /submit] — a spec line; admission rejections map to typed
       status codes (see {!status_of_reason}).}} *)

val status_of_reason : Admission.reason -> int
(** [Invalid] 400, [Duplicate] 409, [Queue_full] 429, [Draining] 503. *)

val router :
  ?registry:Because_telemetry.Registry.t -> Service.t -> Because_http.Router.t
(** Build the query-plane router for a service.  The router holds the
    snapshot caches; build it once per service.  [registry] (default
    disabled) receives [http.coalesced] (requests served by another
    request's render) and [http.shed_renders] (requests whose deadline
    expired waiting for a render) counters. *)
