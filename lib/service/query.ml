module H = Because_http

let status_of_reason = function
  | Admission.Invalid _ -> 400
  | Admission.Duplicate _ -> 409
  | Admission.Queue_full _ -> 429
  | Admission.Draining -> 503

(* One generation-stamped document.  [cache] holds immutable (gen, value)
   pairs swapped atomically, so readers are lock-free; [mu] serializes
   renders only, never a cache hit. *)
type 'a doc = {
  cache : (int * 'a) option Atomic.t;
  mu : Mutex.t;
  render : unit -> 'a;
}

let doc render = { cache = Atomic.make None; mu = Mutex.create (); render }

(* Serve [d] at generation >= the counter's current value.  The stamp is
   read before rendering: a mutation that lands mid-render leaves the
   cached stamp behind the counter, so the next request re-renders. *)
let snapshot service d =
  let g = Service.generation service in
  match Atomic.get d.cache with
  | Some ((gen, _) as hit) when gen >= g -> hit
  | _ ->
      Mutex.lock d.mu;
      let hit =
        (* Re-check under the render lock: a concurrent render may have
           refreshed the cache while this request waited. *)
        match Atomic.get d.cache with
        | Some ((gen, _) as hit) when gen >= g -> hit
        | _ ->
            let stamp = Service.generation service in
            let v = d.render () in
            let hit = (stamp, v) in
            Atomic.set d.cache (Some hit);
            hit
      in
      Mutex.unlock d.mu;
      hit

let with_generation gen (resp : H.Response.t) =
  { resp with
    H.Response.headers =
      resp.H.Response.headers @ [ ("X-Generation", string_of_int gen) ] }

let estimates_body rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"estimates\": [\n";
  List.iteri
    (fun i (_, row) ->
      Buffer.add_string b "    ";
      Buffer.add_string b row;
      if i < List.length rows - 1 then Buffer.add_char b ',';
      Buffer.add_char b '\n')
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let router service =
  let status_doc = doc (fun () -> Service.status_json service) in
  let matrix_doc = doc (fun () -> Service.matrix_text service) in
  let metrics_doc = doc (fun () -> Service.metrics_prom service) in
  let estimates_doc = doc (fun () -> Service.estimates_snapshot service) in
  let rt = H.Router.create () in
  H.Router.add rt ~meth:"GET" ~pattern:"/status" (fun _req _params ->
      let gen, body = snapshot service status_doc in
      with_generation gen (H.Response.json body));
  H.Router.add rt ~meth:"GET" ~pattern:"/matrix" (fun _req _params ->
      let gen, body = snapshot service matrix_doc in
      with_generation gen (H.Response.text body));
  H.Router.add rt ~meth:"GET" ~pattern:"/metrics" (fun _req _params ->
      let gen, body = snapshot service metrics_doc in
      with_generation gen
        (H.Response.make 200
           ~headers:
             [ ("Content-Type", "text/plain; version=0.0.4; charset=utf-8") ]
           ~body));
  H.Router.add rt ~meth:"GET" ~pattern:"/estimates" (fun req _params ->
      let gen, rows = snapshot service estimates_doc in
      match H.Request.query_param req "asn" with
      | None -> with_generation gen (H.Response.json (estimates_body rows))
      | Some raw -> (
          match int_of_string_opt raw with
          | None -> H.Response.text ~status:400 "asn must be an integer\n"
          | Some asn ->
              let hits = List.filter (fun (a, _) -> a = asn) rows in
              with_generation gen
                (H.Response.json (estimates_body hits))));
  H.Router.add rt ~meth:"GET" ~pattern:"/campaigns/:id/report"
    (fun _req params ->
      let id = Option.value ~default:"" (List.assoc_opt "id" params) in
      match Service.report_for service ~id with
      | `Unknown -> H.Response.text ~status:404 "unknown campaign\n"
      | `Pending -> H.Response.text ~status:202 "pending\n"
      | `Done report -> H.Response.text report);
  H.Router.add rt ~meth:"POST" ~pattern:"/submit" (fun req _params ->
      match Spec.of_line req.H.Request.body with
      | Error e ->
          H.Response.json ~status:400
            (Printf.sprintf "{ \"error\": \"%s\" }\n" (Store.json_escape e))
      | Ok spec -> (
          match Service.submit service spec with
          | Ok seq ->
              H.Response.json ~status:202
                (Printf.sprintf "{ \"seq\": %d }\n" seq)
          | Error reason ->
              H.Response.json ~status:(status_of_reason reason)
                (Printf.sprintf "{ \"error\": \"%s\" }\n"
                   (Store.json_escape
                      (Admission.reason_to_string reason)))));
  rt
