module H = Because_http
module Tel = Because_telemetry.Registry

let status_of_reason = function
  | Admission.Invalid _ -> 400
  | Admission.Duplicate _ -> 409
  | Admission.Queue_full _ -> 429
  | Admission.Draining -> 503

(* One generation-stamped document.  [cache] holds immutable (gen, value)
   pairs swapped atomically, so readers are lock-free; [rendering] makes
   the render single-flight: under overload, any number of concurrent
   requests for a stale doc produce exactly one render, and the rest
   coalesce onto its result (or shed at their deadline). *)
type 'a doc = {
  cache : (int * 'a) option Atomic.t;
  mu : Mutex.t;
  mutable rendering : bool;
  render : unit -> 'a;
}

let doc render =
  { cache = Atomic.make None; mu = Mutex.create (); rendering = false;
    render }

let fresh d g =
  match Atomic.get d.cache with
  | Some ((gen, _) as hit) when gen >= g -> Some hit
  | _ -> None

(* Serve [d] at generation >= the counter's current value.  The stamp is
   read before rendering: a mutation that lands mid-render leaves the
   cached stamp behind the counter, so the next request re-renders.

   Returns [`Hit] (lock-free cache hit), [`Rendered] (this request did
   the render), [`Coalesced] (waited for a concurrent render's result),
   or [`Shed] (the deadline expired while waiting — the caller turns
   this into a 503 with Retry-After rather than letting a stampede pile
   onto one mutex). *)
let snapshot service d ~deadline =
  let g = Service.generation service in
  match fresh d g with
  | Some hit -> `Hit hit
  | None ->
      let rec acquire waited =
        match fresh d g with
        | Some hit -> if waited then `Coalesced hit else `Hit hit
        | None ->
            Mutex.lock d.mu;
            if d.rendering then begin
              Mutex.unlock d.mu;
              let expired =
                match deadline with
                | Some dl -> Unix.gettimeofday () >= dl
                | None -> false
              in
              if expired then `Shed
              else begin
                (* Wait out the in-flight render.  [Condition] has no
                   timed wait in the stdlib, so waiters poll on a short
                   sleep — they are worker threads in the accept domain,
                   and the sleep releases the runtime lock to the
                   renderer. *)
                Thread.delay 0.0002;
                acquire true
              end
            end
            else begin
              match fresh d g with
              | Some hit ->
                  Mutex.unlock d.mu;
                  if waited then `Coalesced hit else `Hit hit
              | None ->
                  d.rendering <- true;
                  Mutex.unlock d.mu;
                  let finish () =
                    Mutex.lock d.mu;
                    d.rendering <- false;
                    Mutex.unlock d.mu
                  in
                  let stamp = Service.generation service in
                  (match d.render () with
                  | v ->
                      let hit = (stamp, v) in
                      Atomic.set d.cache (Some hit);
                      finish ();
                      `Rendered hit
                  | exception e ->
                      finish ();
                      raise e)
            end
      in
      acquire false

let with_generation gen (resp : H.Response.t) =
  { resp with
    H.Response.headers =
      resp.H.Response.headers @ [ ("X-Generation", string_of_int gen) ] }

let estimates_body rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"estimates\": [\n";
  List.iteri
    (fun i (_, row) ->
      Buffer.add_string b "    ";
      Buffer.add_string b row;
      if i < List.length rows - 1 then Buffer.add_char b ',';
      Buffer.add_char b '\n')
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

(* Every 429/503 this plane produces carries the backpressure contract:
   Retry-After plus the admission-queue depth at refusal time. *)
let backpressure service (resp : H.Response.t) =
  resp
  |> H.Response.with_header "Retry-After" "1"
  |> H.Response.with_header "X-Queue-Depth"
       (string_of_int (Service.pending service))

let router ?(registry = Tel.disabled) service =
  let coalesced = Tel.Counter.v registry "http.coalesced" in
  let shed_renders = Tel.Counter.v registry "http.shed_renders" in
  let status_doc = doc (fun () -> Service.status_json service) in
  let matrix_doc = doc (fun () -> Service.matrix_text service) in
  let metrics_doc = doc (fun () -> Service.metrics_prom service) in
  let estimates_doc = doc (fun () -> Service.estimates_snapshot service) in
  let serve d req k =
    match snapshot service d ~deadline:req.H.Request.deadline with
    | `Hit (gen, v) | `Rendered (gen, v) -> with_generation gen (k v)
    | `Coalesced (gen, v) ->
        Tel.Counter.incr coalesced;
        with_generation gen (k v)
    | `Shed ->
        Tel.Counter.incr shed_renders;
        backpressure service
          (H.Response.text ~status:503 "snapshot render backlog\n")
  in
  let rt = H.Router.create () in
  H.Router.add rt ~meth:"GET" ~pattern:"/status" (fun req _params ->
      serve status_doc req (fun body -> H.Response.json body));
  H.Router.add rt ~meth:"GET" ~pattern:"/matrix" (fun req _params ->
      serve matrix_doc req (fun body -> H.Response.text body));
  H.Router.add rt ~meth:"GET" ~pattern:"/metrics" (fun req _params ->
      serve metrics_doc req (fun body ->
          H.Response.make 200
            ~headers:
              [ ("Content-Type", "text/plain; version=0.0.4; charset=utf-8") ]
            ~body));
  H.Router.add rt ~meth:"GET" ~pattern:"/estimates" (fun req _params ->
      match H.Request.query_param req "asn" with
      | None ->
          serve estimates_doc req (fun rows ->
              H.Response.json (estimates_body rows))
      | Some raw -> (
          match int_of_string_opt raw with
          | None -> H.Response.text ~status:400 "asn must be an integer\n"
          | Some asn ->
              serve estimates_doc req (fun rows ->
                  let hits = List.filter (fun (a, _) -> a = asn) rows in
                  H.Response.json (estimates_body hits))));
  H.Router.add rt ~meth:"GET" ~pattern:"/campaigns/:id/report"
    (fun _req params ->
      let id = Option.value ~default:"" (List.assoc_opt "id" params) in
      match Service.report_for service ~id with
      | `Unknown -> H.Response.text ~status:404 "unknown campaign\n"
      | `Pending -> H.Response.text ~status:202 "pending\n"
      | `Done report -> H.Response.text report);
  H.Router.add rt ~meth:"POST" ~pattern:"/submit" (fun req _params ->
      match Spec.of_line req.H.Request.body with
      | Error e ->
          H.Response.json ~status:400
            (Printf.sprintf "{ \"error\": \"%s\" }\n" (Store.json_escape e))
      | Ok spec -> (
          match Service.submit service spec with
          | Ok seq ->
              H.Response.json ~status:202
                (Printf.sprintf "{ \"seq\": %d }\n" seq)
          | Error reason ->
              let status = status_of_reason reason in
              let resp =
                H.Response.json ~status
                  (Printf.sprintf "{ \"error\": \"%s\" }\n"
                     (Store.json_escape
                        (Admission.reason_to_string reason)))
              in
              if status = 429 || status = 503 then backpressure service resp
              else resp));
  rt
