(** Bounded submission queue with explicit admission control.

    Every submission is either admitted (FIFO position returned) or
    rejected with a typed {!reason} — the queue never grows past its
    configured limit, so a flood of submissions degrades into rejections,
    not into memory exhaustion.  Dedup is by campaign id over the whole
    service lifetime: an id stays taken after its campaign finishes, since
    its report and checkpoint directory keep existing.

    Not internally synchronized — the service serializes every call under
    its own mutex. *)

type reason =
  | Queue_full of { limit : int }  (** Backpressure: resubmit later. *)
  | Duplicate of { id : string }   (** Id already queued, running or done. *)
  | Draining  (** Service is draining or stopped; no new work accepted. *)
  | Invalid of string              (** Spec failed {!Spec.validate}. *)

val reason_to_string : reason -> string

type 'a t

val create : limit:int -> 'a t
(** Raises [Invalid_argument] unless [limit >= 1]. *)

val admit : 'a t -> id:string -> 'a -> (int, reason) result
(** Append to the queue; [Ok seq] is the monotonic submission sequence
    number (0-based, never reused).  Rejections are checked in order:
    draining, duplicate id, queue full. *)

val readmit : 'a t -> seq:int -> id:string -> 'a -> unit
(** Restore a previously-admitted entry (warm start, or an interrupted
    campaign being requeued for resume) at its original sequence number,
    bypassing the limit and the draining gate.  Keeps FIFO order. *)

val reserve : 'a t -> id:string -> unit
(** Mark an id as taken without queueing anything (completed campaigns on
    warm start). *)

val take : 'a t -> (int * string * 'a) option
(** Pop the lowest-sequence pending entry. *)

val depth : 'a t -> int
val limit : 'a t -> int
val set_draining : 'a t -> bool -> unit
val draining : 'a t -> bool
