(** Per-campaign epoch chain with compaction.

    A streaming campaign completes an epoch, produces a posterior
    {!Because_recover.Seed.t}, and {!append}s it here.  Two classes of
    snapshot live in one CRC-sealed checkpoint store
    ([campaigns/<id>/epochs.d]):

    {ul
    {- [epoch-NNNNNN] — the chain: one sealed seed per completed epoch,
       kept as fallback depth and post-mortem history;}
    {- [compacted] — the fold of the chain: always the newest epoch's
       seed, rewritten on every append (a seed is tiny, so the fold is
       one small atomic write).}}

    A cold service start calls {!load}: the compacted seed answers in
    O(1) — zero chain reads, however many epochs the spool has
    accumulated.  Only when the compacted seed is corrupt (quarantined
    by the checkpoint layer) or missing does {!load} walk the chain,
    newest first, and {!chain_loads} counts exactly how many chain
    snapshots were consulted so tests can prove the O(1) path.

    {!compact} prunes chain entries older than the newest [keep],
    bounding the directory's growth; the compacted seed is never
    pruned. *)

type t

val open_ : dir:string -> id:string -> t
(** Open (creating if needed) the epoch store at [dir] for campaign
    [id].  The store fingerprint is derived from [id], so a directory
    recycled across campaigns quarantines the stranger's snapshots. *)

val append : t -> Because_recover.Seed.t -> unit
(** Seal the seed into the chain under its epoch number and fold it
    into the compacted snapshot. *)

val load : t -> Because_recover.Seed.t option
(** The newest available seed: the compacted snapshot when valid,
    otherwise the newest decodable chain entry, otherwise [None]. *)

val compact : t -> keep:int -> unit
(** Prune chain entries older than the newest [keep] epochs.
    Raises [Invalid_argument] if [keep < 1]. *)

val chain : t -> int list
(** Epoch numbers currently present in the chain, ascending. *)

val chain_loads : t -> int
(** How many chain snapshots {!load} has consulted on this handle —
    [0] proves the compacted O(1) path was taken. *)

val warnings : t -> string list
(** Underlying checkpoint-store warnings (corruption, quarantine). *)
