open Because_bgp
module Supervise = Because_recover.Supervise
module Seed = Because_recover.Seed
module Rng = Because_stats.Rng
module Tel = Because_telemetry.Registry

type outcome = {
  status : Supervise.status;
  estimates : Store.estimate array;
  obs_count : int;
  gate_sweeps : int option;
  seed : Seed.t option;
}

let parse_line lineno line =
  match
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  with
  | [] -> Ok None
  | label :: ases -> (
      let damped =
        match label with
        | "rfd" -> Some true
        | "clean" -> Some false
        | _ -> None
      in
      match damped with
      | None ->
          Error
            (Printf.sprintf "line %d: want 'rfd' or 'clean', got %S" lineno
               label)
      | Some damped -> (
          if ases = [] then
            Error (Printf.sprintf "line %d: empty AS path" lineno)
          else
            match
              List.map
                (fun s ->
                  match int_of_string_opt s with
                  | Some n when n >= 0 -> Asn.of_int n
                  | _ -> raise Exit)
                ases
            with
            | path -> Ok (Some (path, damped))
            | exception Exit ->
                Error (Printf.sprintf "line %d: malformed ASN" lineno)))

let parse_observations path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go lineno acc =
            match input_line ic with
            | exception End_of_file -> Ok (List.rev acc)
            | line ->
                if String.length (String.trim line) = 0 then
                  go (lineno + 1) acc
                else if String.length line > 0 && line.[0] = '#' then
                  go (lineno + 1) acc
                else (
                  match parse_line lineno line with
                  | Ok None -> go (lineno + 1) acc
                  | Ok (Some ob) -> go (lineno + 1) (ob :: acc)
                  | Error _ as e -> e)
          in
          go 1 [])

(* Mirror of the campaign's categorize step so warm and cold epochs feed
   the identical category pipeline. *)
let categorize ~min_support result =
  let step1 = Because.Categorize.assign ~min_support result in
  let insufficient = Because.Categorize.insufficient result ~min_support in
  let promos =
    List.filter
      (fun (p : Because.Pinpoint.promotion) ->
        not (List.exists (Asn.equal p.Because.Pinpoint.asn) insufficient))
      (Because.Pinpoint.promotions result ~categories:step1)
  in
  Because.Pinpoint.apply step1 promos

let seed_of_result ~epoch ~gate_sweeps result =
  if result.Because.Infer.runs = [] then None
  else
    let means =
      Because.Posterior.combined result
      |> Array.map (fun (m : Because.Posterior.marginal) ->
             (Asn.to_int m.Because.Posterior.asn, m.Because.Posterior.mean))
    in
    Array.sort (fun (a, _) (b, _) -> Int.compare a b) means;
    Some { Seed.epoch; gate_sweeps; means }

let status_of result =
  if result.Because.Infer.aborted <> [] then
    Supervise.Degraded result.Because.Infer.aborted
  else if result.Because.Infer.runs = [] then
    Supervise.Degraded
      (match result.Because.Infer.warnings with
      | [] -> [ "every sampler chain was dropped" ]
      | ws -> ws)
  else Supervise.Healthy

let run ~spec ~seed ~telemetry ~supervise ~jobs () =
  match spec.Spec.obs with
  | None -> Error "Stream.run: spec has no obs path"
  | Some path -> (
      match parse_observations path with
      | Error e -> Error (Printf.sprintf "observation spool %s: %s" path e)
      | Ok [] ->
          Ok
            { status =
                Supervise.Insufficient
                  [ Printf.sprintf "observation spool %s is empty" path ];
              estimates = [||]; obs_count = 0; gate_sweeps = None;
              seed = None }
      | Ok observations ->
          let data = Because.Tomography.of_observations observations in
          let epoch =
            match seed with
            | Some s -> s.Seed.epoch + 1
            | None -> 1
          in
          let warm = seed <> None in
          (* A warm epoch starts where the last posterior ended, so most of
             the burn-in budget is adaptation it no longer needs. *)
          let burn_in =
            if warm then max 1 (spec.Spec.burn_in / 4)
            else spec.Spec.burn_in
          in
          let init =
            Option.map
              (fun s ->
                let clamp m =
                  Float.max 1e-4 (Float.min (1.0 -. 1e-4) m)
                in
                Array.map
                  (fun asn ->
                    match Seed.lookup s (Asn.to_int asn) with
                    | Some m -> clamp m
                    | None -> 0.5)
                  (Because.Tomography.nodes data))
              seed
          in
          let config =
            { Because.Infer.default_config with
              Because.Infer.n_samples = spec.Spec.samples;
              burn_in;
              n_chains = spec.Spec.chains;
              jobs;
              telemetry;
              supervise;
              init }
          in
          (* The epoch feeds the RNG derivation so a cold rerun of epoch k
             is reproducible, while distinct epochs draw distinct streams. *)
          let rng = Rng.create ((spec.Spec.seed * 1009) + epoch) in
          let result =
            Tel.Span.with_ telemetry ~name:"stream.infer" (fun () ->
                Because.Infer.run ~rng ~config data)
          in
          let categories =
            categorize ~min_support:spec.Spec.min_path_support result
          in
          let estimates = Store.estimates_of_result result ~categories in
          let gate_sweeps =
            Option.map
              (fun draws -> burn_in + draws)
              (Because.Infer.gate_draws result)
          in
          Ok
            { status = status_of result;
              estimates;
              obs_count = List.length observations;
              gate_sweeps;
              seed = seed_of_result ~epoch ~gate_sweeps result })
