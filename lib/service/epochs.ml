module Checkpoint = Because_recover.Checkpoint
module Seed = Because_recover.Seed

type t = {
  store : Checkpoint.t;
  mutable chain_loads : int;
}

let fingerprint id = "because-stream-epochs/1:" ^ id

let open_ ~dir ~id =
  { store = Checkpoint.open_ ~dir ~fingerprint:(fingerprint id) ();
    chain_loads = 0 }

let compacted_key = "compacted"
let epoch_prefix = "epoch-"
let epoch_key n = Printf.sprintf "%s%06d" epoch_prefix n

let chain t =
  let plen = String.length epoch_prefix in
  Checkpoint.keys t.store
  |> List.filter_map (fun k ->
         if
           String.length k > plen
           && String.equal (String.sub k 0 plen) epoch_prefix
         then int_of_string_opt (String.sub k plen (String.length k - plen))
         else None)
  |> List.sort Int.compare

let append t (seed : Seed.t) =
  let payload = Seed.encode seed in
  Checkpoint.save t.store ~key:(epoch_key seed.Seed.epoch) payload;
  (* The fold: the compacted snapshot is always the newest epoch, so a
     cold start never has to replay the chain. *)
  Checkpoint.save t.store ~key:compacted_key payload

let load_chain t =
  let rec go = function
    | [] -> None
    | epoch :: older -> (
        t.chain_loads <- t.chain_loads + 1;
        match Checkpoint.load t.store ~key:(epoch_key epoch) with
        | None -> go older
        | Some payload -> (
            match Seed.decode payload with
            | Some seed -> Some seed
            | None -> go older))
  in
  go (List.rev (chain t))

let load t =
  match Checkpoint.load t.store ~key:compacted_key with
  | Some payload -> (
      match Seed.decode payload with
      | Some seed -> Some seed
      | None -> load_chain t)
  | None -> load_chain t

let compact t ~keep =
  if keep < 1 then invalid_arg "Epochs.compact: keep < 1";
  match List.rev (chain t) with
  | [] -> ()
  | newest :: _ ->
      List.iter
        (fun epoch ->
          if epoch <= newest - keep then
            Checkpoint.remove t.store ~key:(epoch_key epoch))
        (chain t)

let chain_loads t = t.chain_loads
let warnings t = Checkpoint.warnings t.store
