(** Streaming observation intake: one inference epoch over a spool file.

    A streaming campaign skips the simulator entirely — its labeled-path
    observations arrive in an external spool file (one
    [rfd|clean ASN ASN ...] line per path) that grows between runs.  Each
    run of the spec is an {e epoch}: the file is re-read in full, the
    posterior re-inferred, and — from epoch 2 on — the chains start at the
    previous epoch's posterior means instead of the samplers' cold
    defaults.  The convergence gate ({!Because.Infer.gate_draws}) measures
    what that warm start buys: the sweeps-to-convergence recorded per
    epoch is what the bench compares warm vs cold. *)

type outcome = {
  status : Because_recover.Supervise.status;
  estimates : Store.estimate array;
  obs_count : int;
  gate_sweeps : int option;
      (** Burn-in + gated retained draws, when the R̂ gate passed. *)
  seed : Because_recover.Seed.t option;
      (** Posterior seed for the next epoch; [None] when inference
          produced no usable posterior. *)
}

val parse_observations :
  string -> ((Because_bgp.Asn.t list * bool) list, string) result
(** Parse a spool file.  Each non-empty, non-[#] line is
    [rfd ASN ASN ...] (damping observed on the path) or
    [clean ASN ASN ...]; [Error] names the first offending line.  A
    missing file is an error (the admission layer validates the spec, not
    the file — it may legitimately appear later). *)

val run :
  spec:Spec.t ->
  seed:Because_recover.Seed.t option ->
  telemetry:Because_telemetry.Registry.t ->
  supervise:Because_recover.Supervise.budget ->
  jobs:int ->
  unit ->
  (outcome, string) result
(** Run one epoch of [spec] (which must have [obs = Some path]).
    Deterministic in (spec, file contents, [seed]): the RNG derives from
    the spec seed, so re-running the same epoch reproduces it bit-for-bit.
    [seed = Some _] warm-starts the chains at the seeded means and cuts
    burn-in to a quarter.  May raise {!Because_recover.Supervise.Drained}
    when a service drain lands mid-epoch. *)
