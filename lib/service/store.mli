(** In-memory results store: the latest per-AS damping-probability
    estimates and health state of every campaign the service has seen,
    plus the service-level rollup — what a status endpoint would serve.

    Entries are mutated only by the service (under its mutex); readers go
    through the service's snapshot functions. *)

open Because_bgp

type estimate = {
  asn : Asn.t;
  mean : float;       (** Posterior mean damping probability. *)
  lo : float;         (** 95 % HDPI lower edge. *)
  hi : float;         (** 95 % HDPI upper edge. *)
  category : int;     (** Final category 1-5 (after pinpointing). *)
  damping : bool;     (** Category 4/5 — flagged as damping. *)
}

type health =
  | Queued
  | Running
  | Interrupted
      (** Drained or crashed mid-run with a durable checkpoint; a warm
          start resumes it bit-for-bit. *)
  | Done of Because_recover.Supervise.status

val health_label : health -> string
(** [queued], [running], [interrupted], or the
    {!Because_recover.Supervise.status_label} ([healthy] / [degraded] /
    [insufficient]). *)

type entry = {
  spec : Spec.t;
  seq : int;  (** Admission sequence number. *)
  mutable health : health;
  mutable attempts : int;
  mutable estimates : estimate array;
  mutable queue_wait_s : float;  (** Submit-to-claim latency, seconds. *)
  mutable epoch : int;
      (** Streaming campaigns: how many times this id has been (re-)run;
          always 1 for classic campaigns. *)
  mutable warm : bool;
      (** Whether the current epoch warm-started from a posterior seed. *)
  mutable gate_sweeps : int option;
      (** Sweeps (burn-in + gated draws) the last epoch needed to pass the
          R̂ convergence gate; [None] when unknown or never passed. *)
  mutable obs_count : int;
      (** Observations read from the spool file by the last epoch. *)
}

type t

val create : unit -> t
val add : t -> Spec.t -> seq:int -> entry
(** Raises [Invalid_argument] on a duplicate id (admission dedups first). *)

val find : t -> id:string -> entry option
val entries : t -> entry list  (** Ascending admission sequence. *)

val counts : t -> (string * int) list
(** Health-label histogram over all entries, fixed label order. *)

val rollup : t -> Because_recover.Supervise.status
(** Service-level verdict over completed campaigns: [Insufficient] if any
    finished insufficient, else [Degraded] if any finished degraded, else
    [Healthy]; reasons are prefixed with the campaign id. *)

val estimates_of_result :
  Because.Infer.result ->
  categories:(Asn.t * Because.Categorize.t) list ->
  estimate array
(** Per-AS marginals of a pooled posterior joined with final categories;
    [\[||\]] when no sampler run survived.  Shared by the campaign path
    ({!estimates_of_outcome}) and the streaming path. *)

val estimates_of_outcome :
  Because_scenario.Campaign.outcome -> estimate array
(** Per-AS marginals of the campaign's pooled posterior
    ({!Because.Posterior.combined}) joined with the final categories;
    [\[||\]] when inference produced nothing. *)

val report : entry -> string
(** The campaign's durable report: spec line, status, and the sorted
    estimate table.  Deterministic — no timestamps, attempt counts or
    host state — so an interrupted-and-resumed service reproduces the
    uninterrupted report byte-for-byte. *)

val json_escape : string -> string
(** JSON string-body escaping: quotes, backslashes and every control byte
    (as [\uXXXX]); the output is always a valid JSON string body. *)

val to_json : t -> draining:bool -> limit:int -> depth:int -> string
(** Service status document: rollup, queue stats, per-campaign health and
    flagged ASs. *)

val matrix : t -> string
(** Compact per-campaign text table (id, health, attempts, flagged ASs) —
    the operator's at-a-glance view. *)
