(** The always-on tomography service: a supervised scheduler multiplexing
    many concurrent campaigns over worker domains, with bounded admission,
    durable state and graceful drain.

    Lifecycle:
    {ul
    {- {!create} (fresh state directory) or {!load} (warm start from a
       previous generation's durable queue and per-campaign checkpoints);}
    {- {!submit} specs — admitted into the bounded queue and persisted, or
       rejected with a typed {!Admission.reason};}
    {- {!start} spawns the worker domains; each claims the oldest queued
       campaign and runs it under {!Because_recover.Supervise} budgets with
       capped-backoff retries, isolated from its siblings: a campaign that
       exhausts its retry budget finishes [Insufficient] while the rest of
       the service keeps running and accepting work;}
    {- {!drain} (SIGTERM path) checkpoints every in-flight chain at its
       next sweep boundary and persists the queue; {!stop_when_idle} lets
       the queue run dry instead; {!join} waits for the workers and
       returns the {!verdict}.}}

    Durability contract: after a drain — or a hard kill at an arbitrary
    checkpoint boundary (the [kill_after_saves] chaos hook) — a {!load} of
    the same state directory resumes every interrupted campaign and
    completes it bit-for-bit identical to an uninterrupted run, reports
    included.  Completed campaigns are never re-run: their results ride in
    the durable queue snapshot and their reports stay on disk. *)

type config = {
  state_dir : string;  (** Root of all durable state. *)
  limit : int;         (** Admission queue bound. *)
  jobs : int;          (** Worker domains (concurrent campaigns). *)
  campaign_jobs : int;
      (** Inference pool size inside each campaign; outcomes are
          jobs-invariant, so 1 (run on the worker domain) is the safe
          default when [jobs > 1]. *)
  max_attempts : int;  (** Runs per campaign before giving up. *)
  retry_backoff_s : float;
      (** Base of the unified {!Because_resilience.Policy} backoff
          (capped exponential, deterministic seeded jitter) used by
          campaign supervision and durable writes alike. *)
  compact_every : int;
      (** Epoch-chain compaction cadence for streaming campaigns: every
          this many epochs the chain is pruned to its newest
          [compact_every] entries (the compacted seed itself is folded
          on every epoch).  [0] disables pruning.  Default 8. *)
  every_sweeps : int option;  (** Chain checkpoint cadence. *)
  chain_deadline_s : float option;  (** Per-chain wall-clock budget. *)
  sweep_budget : int option;        (** Per-chain sweep budget. *)
  telemetry : Because_telemetry.Registry.t;
  kill_after_saves : int option;
      (** Chaos: SIGKILL the whole service (every campaign dies at its
          next checkpoint write) after this many saves service-wide.
          Test/soak only. *)
  chaos : (id:string -> attempt:int -> int option) option;
      (** Chaos: per-campaign [kill_after_saves] budget by id and attempt
          (1-based) — [Some n] makes that attempt crash after [n] saves,
          exercising retry and isolation.  Test/soak only. *)
}

val default_config : state_dir:string -> config
(** limit 16, 1 worker, 1 campaign job, 3 attempts, 10 ms backoff base,
    checkpoint every 25 sweeps, no budgets, telemetry disabled, no chaos. *)

type t

type verdict =
  | Completed  (** Queue ran dry; every campaign reached a final state. *)
  | Drained    (** Graceful drain: interrupted work checkpointed and requeued. *)
  | Killed     (** Chaos kill tripped: state as a crash left it. *)

val create : config -> t
(** Fresh service: wipes any previous durable state under [state_dir]. *)

val load : config -> t
(** Warm start: restore the durable queue — completed campaigns keep
    their results (reports re-materialized if missing), pending and
    interrupted ones are requeued for (resumed) execution.  A corrupt or
    mismatched snapshot is quarantined by the checkpoint layer and the
    service starts cold rather than crashing; see {!warnings}. *)

val config : t -> config
val store : t -> Store.t

val submit : t -> Spec.t -> (int, Admission.reason) result
(** Validate, admit, record and persist one campaign submission.
    Re-submitting a {e completed streaming} spec (same id, same line,
    [obs] set) is not a duplicate: the entry re-enters the queue as its
    next epoch at its original sequence number, to be warm-started from
    the posterior seed the previous epoch saved. *)

val generation : t -> int
(** Monotonic store generation: bumped on every observable mutation
    (submission, claim, completion, interruption, drain).  The query
    plane renders each document at most once per generation and serves
    cached bytes — stamped with the generation read {e before} the
    render — lock-free in between. *)

val status_json : t -> string
(** Render the {!Store.to_json} status document (takes the mutex). *)

val matrix_text : t -> string
(** Render the live suspect matrix ({!Store.matrix}; takes the mutex). *)

val metrics_prom : t -> string
(** Render the Prometheus exposition of the telemetry registry (empty on
    a disabled registry). *)

val report_for : t -> id:string -> [ `Unknown | `Pending | `Done of string ]
(** The campaign's report: [`Unknown] for an id never admitted,
    [`Pending] while queued/running/interrupted, [`Done report]
    afterwards. *)

val estimates_snapshot : t -> (int * string) list
(** One [(asn, json-object)] row per estimate across every campaign, in
    admission order — the query plane's per-AS lookup table. *)

val pending : t -> int
val running : t -> int

val draining : t -> bool
(** True once {!drain} was called or the process-wide
    {!Because_recover.Supervise} drain flag is up (a signal handler can
    only safely set that flag — one atomic store — so the service treats
    it as a drain request everywhere it checks its own). *)

val killed : t -> bool
(** True once the chaos kill tripped; the service is dead — {!load} a
    fresh one to resume its work. *)

val start : t -> unit
(** Spawn the worker domains.  Raises [Invalid_argument] if workers are
    already running or the service was chaos-killed. *)

val stop_when_idle : t -> unit
(** Tell idle workers to exit once the queue is empty instead of waiting
    for more submissions. *)

val drain : t -> unit
(** Graceful shutdown: reject new submissions, stop claiming queued work,
    ask every in-flight chain (via {!Because_recover.Supervise.request_drain})
    to checkpoint and stop at its next sweep boundary.  Idempotent and
    async-signal-safe apart from the queue persistence done later by the
    interrupted workers themselves. *)

val join : t -> verdict
(** Wait for every worker domain, write the final status files, return
    the verdict. *)

val run_until_idle : t -> verdict
(** [start] + [stop_when_idle] + [join]. *)

val reset_drain : t -> unit
(** Clear the service and process-wide drain flags so a new generation
    (or the next test) starts undrained.  Requires the workers to be
    joined. *)

val rollup : t -> Because_recover.Supervise.status
val exit_code : t -> verdict -> int
(** The CLI contract: [Completed] maps through
    {!Because_recover.Supervise.exit_code} (0/3/4); [Drained] and
    [Killed] are 5 — interrupted but checkpointed, rerun to resume. *)

val warnings : t -> string list
(** Recovery notes (quarantines, fallbacks, resumed chains) prefixed with
    the campaign id, plus queue-store notes; oldest first.  Never part of
    results — a resumed service's reports equal an uninterrupted one's. *)

val write_status : t -> unit
(** Atomically (re)write [status.json] (see {!Store.to_json}) and — when
    telemetry is enabled — [metrics.prom] under [state_dir]. *)

val report_path : t -> id:string -> string
val status_path : t -> string
val metrics_path : t -> string
