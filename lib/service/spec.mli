(** One campaign submission: everything the service needs to rebuild the
    campaign from scratch, deterministically, in a single line of text.

    The line format ([key=value] pairs, space-separated) doubles as the
    spool-file format of the service daemon and as the durable encoding
    inside the queue checkpoint — a spec round-trips through
    {!to_line}/{!of_line} without loss, so a warm-started service re-derives
    bit-for-bit the campaign an interrupted one was running. *)

type t = {
  id : string;
      (** Unique campaign name; doubles as the checkpoint sub-directory and
          report file name, so it is restricted to [\[A-Za-z0-9._-\]]. *)
  seed : int;            (** World seed — fixes topology, deployment, faults. *)
  transit : int;         (** Transit ASs in the generated topology. *)
  stub : int;            (** Stub ASs. *)
  vantage_hosts : int;   (** ASs hosting collector sessions. *)
  interval_min : float;  (** Beacon update interval, minutes. *)
  cycles : int;          (** Burst–Break pairs. *)
  faults : string;       (** ["none"] or a {!Because_faults.Plan.severity_names} entry. *)
  chains : int;          (** Independent MCMC chains per sampler. *)
  samples : int;         (** Retained draws per chain. *)
  burn_in : int;         (** Discarded adaptation draws per chain. *)
  min_path_support : int;
  obs : string option;
      (** Streaming campaigns: path to a labeled-observation spool file
          (one [rfd|clean ASN ASN ...] path per line) that may grow between
          runs.  When set, the service skips the simulator and infers
          directly from the file; re-submitting the same spec after it
          completes starts a new epoch that warm-starts from the previous
          epoch's posterior.  [None] — the default — is the classic
          simulate-then-infer campaign, line format unchanged. *)
}

val default : id:string -> t
(** A small-but-real campaign: seed 42, 12 transit / 30 stub / 8 vantage
    hosts, 1-minute interval, 1 cycle, no faults, 1 chain of 400 samples
    (200 burn-in). *)

val validate : t -> (t, string) result
(** Check the id alphabet and every numeric range; [Error] carries a
    human-readable reason (surfaced as an {!Admission} rejection). *)

val severity : t -> Because_faults.Plan.severity option
(** [None] for ["none"]; raises [Invalid_argument] on an unknown name
    ({!validate} rejects those first). *)

val to_line : t -> string
val of_line : string -> (t, string) result
(** Parse a [key=value] line; unknown keys and malformed values are
    [Error]s, missing keys fall back to {!default} (the id is required). *)

val equal : t -> t -> bool

val world : t -> Because_scenario.World.t
(** Build the campaign's world — deterministic in the spec alone. *)

val params :
  t ->
  world:Because_scenario.World.t ->
  jobs:int ->
  Because_scenario.Campaign.params
(** Campaign parameters for this spec: [jobs] worker domains for the
    inference pool (outcomes are jobs-invariant), faults drawn from the
    spec's severity against [world].  Supervision budgets, telemetry and
    checkpointing are layered on by the service, not here. *)
