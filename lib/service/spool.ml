let eligible name =
  String.length name > 0
  && name.[0] <> '.'
  && Filename.check_suffix name ".campaign"

let scan dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names |> List.filter eligible |> List.sort compare
