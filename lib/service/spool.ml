let eligible name =
  String.length name > 0
  && name.[0] <> '.'
  && Filename.check_suffix name ".campaign"

(* Name eligibility is necessary but not sufficient: a zero-byte file is
   a producer that created-then-crashed before writing (rename-into-place
   was skipped), and a symlink can alias a file still being written
   elsewhere — or dangle.  Both are refused by inode, not name. *)
let plausible dir name =
  match Unix.lstat (Filename.concat dir name) with
  | { Unix.st_kind = Unix.S_REG; st_size; _ } -> st_size > 0
  | _ -> false
  | exception Unix.Unix_error _ -> false

let scan dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun n -> eligible n && plausible dir n)
      |> List.sort compare
