(** AS-path cleaning (§4.2 of the paper): prepending is removed, looping
    paths are rejected. *)

open Because_bgp

val remove_prepending : Asn.t list -> Asn.t list
(** Collapse consecutive duplicate ASNs. *)

val has_loop : Asn.t list -> bool
(** True when an ASN re-appears non-consecutively (after prepending
    removal). *)

val clean : Asn.t list -> Asn.t list option
(** [Some cleaned] path, or [None] when the path loops. *)

val observed_paths : Because_collector.Dump.record list -> (Asn.t list * int) list
(** Distinct cleaned loop-free AS paths among announcement records with
    occurrence counts, most frequent first (ties broken by path for
    determinism). *)
