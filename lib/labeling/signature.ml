open Because_bgp

type pair = {
  burst_start : float;
  burst_end : float;
  break_end : float;
  burst_updates : int;
  last_burst_update : float option;
  readvertisement : float option;
  r_delta : float option;
  readvertisement_path : Asn.t list option;
  burst_dominant_path : Asn.t list option;
  damped : bool;
}

let default_min_r_delta = 300.0
let default_margin = 90.0

let dominant_path announcements =
  let table = Hashtbl.create 8 in
  List.iter
    (fun u ->
      match Update.as_path u with
      | Some path -> (
          match Clean.clean path with
          | Some cleaned ->
              let count =
                Option.value (Hashtbl.find_opt table cleaned) ~default:0
              in
              Hashtbl.replace table cleaned (count + 1)
          | None -> ())
      | None -> ())
    announcements;
  let best =
    Hashtbl.fold
      (fun path count acc ->
        match acc with
        | Some (_, best_count) when best_count > count -> acc
        | Some (best_path, best_count)
          when best_count = count && List.compare Asn.compare best_path path <= 0
          ->
            acc
        | _ -> Some (path, count))
      table None
  in
  Option.map fst best

let analyse_pair ?(min_r_delta = default_min_r_delta)
    ?(margin = default_margin) ~times ~window () =
  let burst_start, burst_end, break_end = window in
  let burst_hi = burst_end +. margin in
  let in_burst t = t >= burst_start && t <= burst_hi in
  let in_break t = t > burst_hi && t <= break_end in
  let burst_events = List.filter (fun (t, _) -> in_burst t) times in
  let burst_updates = List.length burst_events in
  let last_burst_update =
    List.fold_left
      (fun acc (t, _) ->
        match acc with Some m -> Some (Float.max m t) | None -> Some t)
      None burst_events
  in
  let burst_dominant_path =
    dominant_path
      (List.filter_map
         (fun (_, u) -> if Update.is_announce u then Some u else None)
         burst_events)
  in
  (* The re-advertisement: a Break announcement whose aggregator-encoded
     send time lies far in the past — it was held back by damping. *)
  let qualifying (t, u) =
    if not (in_break t) then None
    else
      match Update.aggregator u with
      | Some { sent_at; valid = true; _ } ->
          let delay = t -. sent_at in
          if delay > min_r_delta then Some (t, delay, u) else None
      | Some { valid = false; _ } | None -> None
  in
  let readv = List.find_map qualifying times in
  (* Attribute the damped evidence to the path the vantage point converges
     to: releases trigger brief path exploration, so the first qualifying
     announcement can carry a transient alternative path, while the last
     Break announcement is the settled (previously damped) path. *)
  let readvertisement_path =
    Option.bind readv (fun (t_first, _, first_u) ->
        let converged =
          List.fold_left
            (fun acc (t, u) ->
              if t >= t_first && in_break t && Update.is_announce u then
                Some u
              else acc)
            (Some first_u) times
        in
        Option.bind converged (fun u ->
            Option.bind (Update.as_path u) Clean.clean))
  in
  {
    burst_start;
    burst_end;
    break_end;
    burst_updates;
    last_burst_update;
    readvertisement = Option.map (fun (t, _, _) -> t) readv;
    r_delta = Option.map (fun (_, d, _) -> d) readv;
    readvertisement_path;
    burst_dominant_path;
    damped = Option.is_some readv;
  }
