(** Path labeling: from per-vantage-point dump records to the
    (AS path, RFD / non-RFD) observations that feed the tomography (§4.2).

    Damping changes which path a vantage point uses — during suppression BGP
    fails over to alternatives — so, as the paper's footnote 1 notes, one
    (vantage point, prefix) pair can yield more than one path measurement.
    Evidence is therefore attributed {e per path}: each damped Burst–Break
    pair credits the AS path carried by its re-advertisement (the damped
    path); each clean pair credits the path that dominated the Burst's
    announcements.  A path is labeled RFD when at least [match_threshold]
    (default 90 %) of its evidence is damped — the slack absorbs session
    resets and other infrastructure noise. *)

open Because_bgp

type labeled_path = {
  prefix : Prefix.t;
  vp : Because_collector.Vantage.t;
  path : Asn.t list;       (** Cleaned path: vantage host first, Beacon origin last. *)
  rfd : bool;
  matched_pairs : int;     (** Burst–Break pairs attributing damped evidence. *)
  total_pairs : int;       (** All pairs attributing evidence to this path. *)
  pairs : Signature.pair list;  (** Every analysed pair of the (vp, prefix) stream. *)
  mean_r_delta : float option;  (** Mean r-delta over this path's damped pairs. *)
  alternatives : Asn.t list list;  (** Other paths observed at the same (vp, prefix). *)
}

val label_vp_prefix :
  ?min_r_delta:float ->
  ?margin:float ->
  ?match_threshold:float ->
  ?gaps:(float * float) list ->
  records:Because_collector.Dump.record list ->
  windows:(float * float * float) list ->
  unit ->
  labeled_path list
(** Label one (vantage point, prefix) record stream — one result per path
    that accumulated evidence.  [records] must all belong to the same vantage
    point and prefix.  Announcements with invalid aggregators are discarded
    first.

    [gaps] are known collection outages [(from, until)] of this vantage
    point: a Burst–Break window overlapping a gap is discarded rather than
    scored, since its missing updates would read as suppression.  Default:
    none. *)

val label_all :
  ?min_r_delta:float ->
  ?margin:float ->
  ?match_threshold:float ->
  ?gaps_of:(int -> (float * float) list) ->
  records:Because_collector.Dump.record list ->
  windows_of:(Prefix.t -> (float * float * float) list) ->
  unit ->
  labeled_path list
(** Group records by (vantage point, prefix) and label each stream whose
    prefix has Burst–Break windows ([windows_of] returning [\[\]] skips the
    prefix, e.g. anchors).  [gaps_of vp_id] supplies each vantage point's
    collection gaps (see {!label_vp_prefix}); default none. *)

val observations : labeled_path list -> (Asn.t list * bool) list
(** The tomography input: [(path, shows-RFD)] pairs. *)
