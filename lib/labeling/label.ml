open Because_bgp
module Dump = Because_collector.Dump

type labeled_path = {
  prefix : Prefix.t;
  vp : Because_collector.Vantage.t;
  path : Asn.t list;
  rfd : bool;
  matched_pairs : int;
  total_pairs : int;
  pairs : Signature.pair list;
  mean_r_delta : float option;
  alternatives : Asn.t list list;
}

type evidence = {
  mutable damped : int;
  mutable clean : int;
  mutable r_deltas : float list;
}

(* A Burst–Break window overlapping a collection gap is torn: its missing
   updates would masquerade as suppression, so it contributes no evidence. *)
let torn gaps (burst_start, _burst_end, break_end) =
  List.exists (fun (lo, hi) -> lo <= break_end && hi >= burst_start) gaps

let label_vp_prefix ?min_r_delta ?margin ?(match_threshold = 0.9)
    ?(gaps = []) ~records ~windows () =
  let windows = List.filter (fun w -> not (torn gaps w)) windows in
  match records with
  | [] -> []
  | first :: _ ->
      let usable = Dump.announcements_with_valid_aggregator records in
      let times =
        List.map (fun (r : Dump.record) -> (r.export_at, r.update)) usable
      in
      let pairs =
        List.map
          (fun window ->
            Signature.analyse_pair ?min_r_delta ?margin ~times ~window ())
          windows
      in
      let table = Hashtbl.create 4 in
      let evidence_for path =
        match Hashtbl.find_opt table path with
        | Some e -> e
        | None ->
            let e = { damped = 0; clean = 0; r_deltas = [] } in
            Hashtbl.replace table path e;
            e
      in
      List.iter
        (fun (p : Signature.pair) ->
          if p.Signature.damped then begin
            (match p.Signature.readvertisement_path with
            | Some path ->
                let e = evidence_for path in
                e.damped <- e.damped + 1;
                (match p.Signature.r_delta with
                | Some d -> e.r_deltas <- d :: e.r_deltas
                | None -> ())
            | None -> ());
            (* The failover path that carried the Burst's updates while the
               primary was suppressed demonstrably did not damp. *)
            match (p.Signature.burst_dominant_path,
                   p.Signature.readvertisement_path)
            with
            | Some dominant, Some readv
              when List.compare Asn.compare dominant readv <> 0 ->
                let e = evidence_for dominant in
                e.clean <- e.clean + 1
            | _ -> ()
          end
          else begin
            match p.Signature.burst_dominant_path with
            | Some path ->
                let e = evidence_for path in
                e.clean <- e.clean + 1
            | None -> ()
          end)
        pairs;
      let vp = first.Dump.vp in
      let prefix = Update.prefix first.Dump.update in
      let all_paths =
        Hashtbl.fold (fun path _ acc -> path :: acc) table []
        |> List.sort (List.compare Asn.compare)
      in
      List.map
        (fun path ->
          let e = Hashtbl.find table path in
          let total = e.damped + e.clean in
          let rfd =
            total > 0
            && float_of_int e.damped /. float_of_int total >= match_threshold
          in
          let mean_r_delta =
            match e.r_deltas with
            | [] -> None
            | ds -> Some (Because_stats.Summary.mean (Array.of_list ds))
          in
          {
            prefix;
            vp;
            path;
            rfd;
            matched_pairs = e.damped;
            total_pairs = total;
            pairs;
            mean_r_delta;
            alternatives =
              List.filter
                (fun other -> List.compare Asn.compare other path <> 0)
                all_paths;
          })
        all_paths

let label_all ?min_r_delta ?margin ?match_threshold ?(gaps_of = fun _ -> [])
    ~records ~windows_of () =
  (* Group records per (vp, prefix), preserving chronology. *)
  let groups = Hashtbl.create 64 in
  List.iter
    (fun (r : Dump.record) ->
      let key =
        (r.vp.Because_collector.Vantage.vp_id, Update.prefix r.update)
      in
      let cell =
        match Hashtbl.find_opt groups key with
        | Some c -> c
        | None ->
            let c = ref [] in
            Hashtbl.replace groups key c;
            c
      in
      cell := r :: !cell)
    records;
  let keys =
    Hashtbl.fold (fun key _ acc -> key :: acc) groups []
    |> List.sort (fun (ia, pa) (ib, pb) ->
           match Int.compare ia ib with
           | 0 -> Prefix.compare pa pb
           | c -> c)
  in
  List.concat_map
    (fun ((vp_id, prefix) as key) ->
      match windows_of prefix with
      | [] -> []
      | windows ->
          let records = List.rev !(Hashtbl.find groups key) in
          label_vp_prefix ?min_r_delta ?margin ?match_threshold
            ~gaps:(gaps_of vp_id) ~records ~windows ())
    keys

let observations labeled =
  List.map (fun lp -> (lp.path, lp.rfd)) labeled
