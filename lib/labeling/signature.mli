(** RFD-signature detection per Burst–Break pair (§4.2, Fig. 5).

    If an AS on the path damps the Beacon prefix, the vantage point sees the
    Burst's updates stop early and — decisively — a {e re-advertisement}
    during the Break once the penalty has decayed below the reuse threshold.
    The re-advertisement is the delayed resend of the final Burst
    announcement, so its aggregator attribute still carries the original
    Beacon send time: the {e r-delta} — observation time minus encoded send
    time — measures how long the announcement was held back.  Requiring
    r-delta to exceed a minimum propagation time (the paper picks 5 minutes,
    comfortably above real propagation plus MRAI) separates damping from
    ordinary BGP delays. *)

type pair = {
  burst_start : float;
  burst_end : float;
  break_end : float;
  burst_updates : int;     (** Observed updates in the Burst window. *)
  last_burst_update : float option;
  readvertisement : float option;  (** Arrival of the first qualifying Break announcement. *)
  r_delta : float option;  (** Arrival − encoded send time of that announcement. *)
  readvertisement_path : Because_bgp.Asn.t list option;
      (** The AS path carried by the re-advertisement — the {e damped} path
          (during suppression the vantage point may have failed over to an
          alternative, so the Burst-dominant path can differ). *)
  burst_dominant_path : Because_bgp.Asn.t list option;
      (** Most frequent cleaned path among the Burst's announcements. *)
  damped : bool;           (** Pair exhibits the RFD signature. *)
}

val default_min_r_delta : float
(** 300 s — the paper's 5-minute minimum propagation time. *)

val default_margin : float
(** 90 s grace after the Burst end during which arrivals still count as Burst
    propagation. *)

val analyse_pair :
  ?min_r_delta:float ->
  ?margin:float ->
  times:(float * Because_bgp.Update.t) list ->
  window:float * float * float ->
  unit ->
  pair
(** [analyse_pair ~times ~window ()] examines the chronological
    [(observation-time, update)] stream of one (vantage point, prefix) pair
    against one [(burst_start, burst_end, break_end)] window.  Announcements
    without a valid aggregator cannot qualify as re-advertisements (their
    send time is unknown). *)
