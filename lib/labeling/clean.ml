open Because_bgp

let remove_prepending path =
  let rec go = function
    | a :: (b :: _ as rest) -> if Asn.equal a b then go rest else a :: go rest
    | short -> short
  in
  go path

let has_loop path =
  let deduped = remove_prepending path in
  let rec check seen = function
    | [] -> false
    | a :: rest -> Asn.Set.mem a seen || check (Asn.Set.add a seen) rest
  in
  check Asn.Set.empty deduped

let clean path =
  let cleaned = remove_prepending path in
  if has_loop cleaned then None else Some cleaned

let compare_paths a b =
  List.compare Asn.compare a b

let observed_paths records =
  let table = Hashtbl.create 16 in
  List.iter
    (fun (r : Because_collector.Dump.record) ->
      match Update.as_path r.update with
      | Some path -> (
          match clean path with
          | Some cleaned ->
              let count =
                Option.value (Hashtbl.find_opt table cleaned) ~default:0
              in
              Hashtbl.replace table cleaned (count + 1)
          | None -> ())
      | None -> ())
    records;
  let all =
    Hashtbl.fold (fun path count acc -> (path, count) :: acc) table []
  in
  List.sort
    (fun (pa, a) (pb, b) ->
      match Int.compare b a with 0 -> compare_paths pa pb | c -> c)
    all
