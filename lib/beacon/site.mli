(** A Beacon site: an origin AS announcing a set of Beacon prefixes on
    controlled schedules (the paper ran seven sites, each with one anchor and
    three oscillating /24 prefixes). *)

open Because_bgp

type beacon_prefix = {
  prefix : Prefix.t;
  schedule : Schedule.t;
  role : [ `Anchor | `Oscillating ];
}

type t = { site_id : int; origin : Asn.t; prefixes : beacon_prefix list }

val make :
  site_id:int ->
  origin:Asn.t ->
  anchor_period:float ->
  ?anchor_cycles:int ->
  oscillating:Schedule.t list ->
  unit ->
  t
(** [make ~site_id ~origin ~anchor_period ~oscillating ()] builds the site
    with slot 0 as the anchor (RIPE-style with [anchor_period],
    [anchor_cycles] rounds — default 12) and one slot per oscillating
    schedule. *)

val install :
  ?outages:(float * float) list -> t -> Because_sim.Script.t -> unit
(** Record every Beacon event of the site into the simulation script
    (replayed into one or many networks by {!Because_sim.Sharded}).

    [outages] are site-failure windows [(from, until)]: scheduled events
    falling inside a window are skipped (Burst phases are lost), announced
    prefixes are withdrawn when a window opens, and on recovery the prefix
    state the schedule prescribes at that moment is restored.  Default: no
    outages. *)

val oscillating_prefix : t -> interval:float -> Prefix.t option
(** The site's oscillating prefix whose schedule uses [interval]. *)

val anchor_prefix : t -> Prefix.t option
val end_time : t -> float
