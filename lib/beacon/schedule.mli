(** Two-phase BGP Beacon schedules (§4.1 of the paper).

    A Beacon cycles between a {e Burst} — alternating withdrawals and
    announcements at a fixed update interval, {e starting with a withdrawal
    and ending with an announcement} — and a {e Break} in which no updates are
    sent, letting RFD penalties decay until damped routers release the prefix
    (the delayed re-advertisement that forms the RFD signature).

    A {!ripe_style} schedule reproduces the classic RIPE Beacons (and the
    paper's anchor prefixes): announce / withdraw alternating on a long fixed
    period with no bursts. *)

type action = Announce | Withdraw

type t

val two_phase :
  ?start:float ->
  ?lead_in:float ->
  update_interval:float ->
  flaps:int ->
  break_duration:float ->
  cycles:int ->
  unit ->
  t
(** [two_phase ~update_interval ~flaps ~break_duration ~cycles ()] performs
    [cycles] Burst–Break rounds; each Burst is [flaps] withdrawal/announcement
    pairs spaced [update_interval] seconds apart.  [lead_in] (default 600 s)
    is the quiet period after the initial announcement at [start] (default
    0). *)

val of_durations :
  ?start:float ->
  ?lead_in:float ->
  update_interval:float ->
  burst_duration:float ->
  break_duration:float ->
  cycles:int ->
  unit ->
  t
(** Paper-style parametrisation: as many whole flaps as fit in
    [burst_duration] (the paper used 2-hour Bursts). *)

val ripe_style : ?start:float -> period:float -> cycles:int -> unit -> t
(** Announce at [start], withdraw after [period], re-announce after another
    [period], … for [cycles] announce/withdraw rounds (RIPE Beacons use a
    2-hour period). *)

val events : t -> (float * action) list
(** All Beacon events in chronological order, including the initial
    announcement. *)

val update_interval : t -> float

val windows : t -> (float * float * float) list
(** Per cycle: [(burst_start, burst_end, break_end)].  For a RIPE-style
    schedule each (announce, withdraw) round counts as a degenerate burst
    with an empty break. *)

val end_time : t -> float
(** Time of the last scheduled event. *)

val flaps_per_burst : t -> int
