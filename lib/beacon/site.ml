open Because_bgp

type beacon_prefix = {
  prefix : Prefix.t;
  schedule : Schedule.t;
  role : [ `Anchor | `Oscillating ];
}

type t = { site_id : int; origin : Asn.t; prefixes : beacon_prefix list }

let make ~site_id ~origin ~anchor_period ?(anchor_cycles = 12) ~oscillating ()
    =
  let anchor =
    {
      prefix = Prefix.beacon ~site:site_id ~slot:0;
      schedule =
        Schedule.ripe_style ~period:anchor_period ~cycles:anchor_cycles ();
      role = `Anchor;
    }
  in
  let oscillating =
    List.mapi
      (fun i schedule ->
        {
          prefix = Prefix.beacon ~site:site_id ~slot:(i + 1);
          schedule;
          role = `Oscillating;
        })
      oscillating
  in
  { site_id; origin; prefixes = anchor :: oscillating }

let in_window windows time =
  List.exists (fun (lo, hi) -> time >= lo && time <= hi) windows

(* Last scheduled action satisfying [keep]: the announce/withdraw state the
   schedule prescribes at that point. *)
let state_when events keep =
  List.fold_left
    (fun acc (time, action) -> if keep time then Some action else acc)
    None events

let install ?(outages = []) t script =
  List.iter
    (fun bp ->
      let events = Schedule.events bp.schedule in
      List.iter
        (fun (time, action) ->
          if not (in_window outages time) then
            match action with
            | Schedule.Announce ->
                Because_sim.Script.announce script ~time ~origin:t.origin
                  bp.prefix
            | Schedule.Withdraw ->
                Because_sim.Script.withdraw script ~time ~origin:t.origin
                  bp.prefix)
        events;
      List.iter
        (fun (lo, hi) ->
          (* The site fails: whatever it had announced is withdrawn. *)
          (match state_when events (fun time -> time < lo) with
          | Some Schedule.Announce ->
              Because_sim.Script.withdraw script ~time:lo ~origin:t.origin
                bp.prefix
          | Some Schedule.Withdraw | None -> ());
          (* On recovery, restore the state the schedule prescribes now
             (events inside the window were lost). *)
          match state_when events (fun time -> time <= hi) with
          | Some Schedule.Announce ->
              Because_sim.Script.announce script ~time:hi ~origin:t.origin
                bp.prefix
          | Some Schedule.Withdraw | None -> ())
        outages)
    t.prefixes

let oscillating_prefix t ~interval =
  List.find_map
    (fun bp ->
      match bp.role with
      | `Oscillating when Float.equal (Schedule.update_interval bp.schedule) interval
        ->
          Some bp.prefix
      | `Oscillating | `Anchor -> None)
    t.prefixes

let anchor_prefix t =
  List.find_map
    (fun bp -> match bp.role with `Anchor -> Some bp.prefix | _ -> None)
    t.prefixes

let end_time t =
  List.fold_left
    (fun acc bp -> Float.max acc (Schedule.end_time bp.schedule))
    0.0 t.prefixes
