type action = Announce | Withdraw

type t = {
  start : float;
  lead_in : float;
  update_interval : float;
  flaps : int;
  break_duration : float;
  cycles : int;
  ripe : bool;
}

let two_phase ?(start = 0.0) ?(lead_in = 600.0) ~update_interval ~flaps
    ~break_duration ~cycles () =
  if update_interval <= 0.0 then
    invalid_arg "Schedule.two_phase: update_interval must be positive";
  if flaps < 1 then invalid_arg "Schedule.two_phase: need at least one flap";
  if cycles < 1 then invalid_arg "Schedule.two_phase: need at least one cycle";
  { start; lead_in; update_interval; flaps; break_duration; cycles;
    ripe = false }

let of_durations ?(start = 0.0) ?(lead_in = 600.0) ~update_interval
    ~burst_duration ~break_duration ~cycles () =
  let flaps =
    Stdlib.max 1 (int_of_float (burst_duration /. (2.0 *. update_interval)))
  in
  two_phase ~start ~lead_in ~update_interval ~flaps ~break_duration ~cycles ()

let ripe_style ?(start = 0.0) ~period ~cycles () =
  if period <= 0.0 then invalid_arg "Schedule.ripe_style: period must be positive";
  { start; lead_in = 0.0; update_interval = period; flaps = 1;
    break_duration = 0.0; cycles; ripe = true }

let update_interval t = t.update_interval
let flaps_per_burst t = t.flaps

let burst_duration t =
  (* W at 0, A at i, W at 2i, ..., A at (2·flaps − 1)·i. *)
  float_of_int ((2 * t.flaps) - 1) *. t.update_interval

let cycle_duration t = burst_duration t +. t.break_duration

let burst_start t c =
  t.start +. t.lead_in +. (float_of_int c *. cycle_duration t)

let events t =
  if t.ripe then begin
    (* Announce / withdraw on the fixed period. *)
    let evs = ref [] in
    for c = 0 to t.cycles - 1 do
      let base = t.start +. (2.0 *. float_of_int c *. t.update_interval) in
      evs := (base +. t.update_interval, Withdraw) :: (base, Announce) :: !evs
    done;
    List.rev !evs
  end
  else begin
    let evs = ref [ (t.start, Announce) ] in
    for c = 0 to t.cycles - 1 do
      let bs = burst_start t c in
      for k = 0 to t.flaps - 1 do
        let w = bs +. (2.0 *. float_of_int k *. t.update_interval) in
        let a = w +. t.update_interval in
        evs := (a, Announce) :: (w, Withdraw) :: !evs
      done
    done;
    List.sort (fun (ta, _) (tb, _) -> Float.compare ta tb) !evs
  end

let windows t =
  if t.ripe then
    List.init t.cycles (fun c ->
        let base = t.start +. (2.0 *. float_of_int c *. t.update_interval) in
        (base, base +. t.update_interval, base +. (2.0 *. t.update_interval)))
  else
    List.init t.cycles (fun c ->
        let bs = burst_start t c in
        let be = bs +. burst_duration t in
        (bs, be, be +. t.break_duration))

let end_time t =
  match List.rev (events t) with (time, _) :: _ -> time | [] -> t.start
