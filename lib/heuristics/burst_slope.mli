(** Heuristic M3 — announcement distribution across Bursts (§5.2.3, Fig. 10).

    A damping AS forwards fewer announcements towards the end of a Burst
    (once suppression kicks in, updates stop), while a non-damping AS
    forwards them evenly.  Every announcement is credited to each AS on its
    own AS path and grouped into 40 time bins per Burst; a line is fit
    through the bin heights and the fitted relative change maps to a score in
    [0, 1] — 1 when announcements die out, 0 when the rate stays flat. *)

open Because_bgp

val bins : int
(** 40, as in the paper. *)

val score_of_histogram : float array -> float
(** Map one aggregate Burst histogram to a score (exposed for tests and the
    Fig. 10 reproduction). *)

val histograms :
  records:Because_collector.Dump.record list ->
  windows_of:(Prefix.t -> (float * float * float) list) ->
  float array Asn.Map.t
(** Per-AS aggregate announcement histogram over all Burst windows of all
    oscillating prefixes. *)

val scores :
  records:Because_collector.Dump.record list ->
  windows_of:(Prefix.t -> (float * float * float) list) ->
  float Asn.Map.t
