(** Heuristic M1 — RFD path ratio (§5.2.1).

    For each AS, the share of its paths that show the RFD signal:

    M1(AS) = #RFD-paths(AS) / (#RFD-paths(AS) + #non-RFD-paths(AS)).

    Robust for richly connected ASs; stubs inherit their upstreams' damping
    and single-homed customers of a damping provider are false positives. *)

open Because_bgp

val scores : (Asn.t list * bool) list -> float Asn.Map.t
(** Per-AS ratio over labeled paths.  Every AS appearing on at least one path
    receives a score. *)
