(** Combined heuristic classifier (§5.2): the average of metrics M1–M3 per
    AS, thresholded to a decision.  Unlike BeCAUSe the threshold needs
    tuning, and the heuristics misfire when an AS sits behind a damping
    upstream (Table 3's TekSavvy case). *)

open Because_bgp

type verdict = {
  asn : Asn.t;
  m1 : float;        (** RFD path ratio. *)
  m2 : float;        (** Alternative-path avoidance. *)
  m3 : float;        (** Burst announcement slope. *)
  combined : float;  (** Mean of the three. *)
  rfd : bool;
}

val default_threshold : float
(** 0.5. *)

val evaluate :
  ?threshold:float ->
  records:Because_collector.Dump.record list ->
  labeled:Because_labeling.Label.labeled_path list ->
  windows_of:(Prefix.t -> (float * float * float) list) ->
  unit ->
  verdict list
(** One verdict per AS appearing on any labeled path, sorted by descending
    combined score. *)

val damping_set : verdict list -> Asn.Set.t
