(** Heuristic M2 — alternative-path avoidance (§5.2.2).

    Damping reveals alternative paths through path hunting, and an AS that
    actively damps will not appear on the alternatives that replace its
    damped path.  For each AS we average, over the damped (vantage point,
    prefix) observations whose primary path contains it, the share of
    alternative paths that avoid the AS. *)

open Because_bgp

val scores : Because_labeling.Label.labeled_path list -> float Asn.Map.t
(** ASs with no damped primary path, or whose damped observations revealed no
    alternatives, score 0. *)
