open Because_bgp
module Label = Because_labeling.Label

let scores labeled =
  let acc = Hashtbl.create 64 in
  let note asn share =
    let sum, count = Option.value (Hashtbl.find_opt acc asn) ~default:(0.0, 0) in
    Hashtbl.replace acc asn (sum +. share, count + 1)
  in
  List.iter
    (fun (lp : Label.labeled_path) ->
      if lp.Label.rfd && lp.Label.alternatives <> [] then begin
        let n_alt = List.length lp.Label.alternatives in
        List.iter
          (fun asn ->
            let avoiding =
              List.length
                (List.filter
                   (fun alt -> not (List.exists (Asn.equal asn) alt))
                   lp.Label.alternatives)
            in
            note asn (float_of_int avoiding /. float_of_int n_alt))
          lp.Label.path
      end)
    labeled;
  let with_scores =
    Hashtbl.fold
      (fun asn (sum, count) m ->
        Asn.Map.add asn (sum /. float_of_int (Stdlib.max 1 count)) m)
      acc Asn.Map.empty
  in
  (* ASs never seen on a damped path with alternatives default to 0. *)
  List.fold_left
    (fun m (lp : Label.labeled_path) ->
      List.fold_left
        (fun m asn ->
          if Asn.Map.mem asn m then m else Asn.Map.add asn 0.0 m)
        m lp.Label.path)
    with_scores labeled
