open Because_bgp
module Label = Because_labeling.Label

type verdict = {
  asn : Asn.t;
  m1 : float;
  m2 : float;
  m3 : float;
  combined : float;
  rfd : bool;
}

let default_threshold = 0.5

let evaluate ?(threshold = default_threshold) ~records ~labeled ~windows_of ()
    =
  let observations = Label.observations labeled in
  let m1 = Path_ratio.scores observations in
  let m2 = Alt_paths.scores labeled in
  let m3 = Burst_slope.scores ~records ~windows_of in
  let find map asn = Option.value (Asn.Map.find_opt asn map) ~default:0.0 in
  let all_ases =
    List.fold_left
      (fun acc (path, _) ->
        List.fold_left (fun acc asn -> Asn.Set.add asn acc) acc path)
      Asn.Set.empty observations
  in
  let verdicts =
    Asn.Set.fold
      (fun asn acc ->
        let v1 = find m1 asn and v2 = find m2 asn and v3 = find m3 asn in
        let combined = (v1 +. v2 +. v3) /. 3.0 in
        {
          asn;
          m1 = v1;
          m2 = v2;
          m3 = v3;
          combined;
          rfd = combined >= threshold;
        }
        :: acc)
      all_ases []
  in
  List.sort (fun a b -> Float.compare b.combined a.combined) verdicts

let damping_set verdicts =
  List.fold_left
    (fun acc v -> if v.rfd then Asn.Set.add v.asn acc else acc)
    Asn.Set.empty verdicts
