open Because_bgp
module Dump = Because_collector.Dump
module Clean = Because_labeling.Clean
module Regression = Because_stats.Regression

let bins = 40

let score_of_histogram heights =
  let total = Array.fold_left ( +. ) 0.0 heights in
  if total < float_of_int bins /. 4.0 then 0.0
  else begin
    let fit = Regression.fit_heights heights in
    let rel = Regression.relative_change fit ~n:(Array.length heights) in
    (* Announcements dying out ⇒ rel → −1 ⇒ score → 1. *)
    Float.max 0.0 (Float.min 1.0 (-.rel))
  end

let histograms ~records ~windows_of =
  let acc : (Asn.t, float array) Hashtbl.t = Hashtbl.create 64 in
  let bump asn b =
    let cell =
      match Hashtbl.find_opt acc asn with
      | Some c -> c
      | None ->
          let c = Array.make bins 0.0 in
          Hashtbl.replace acc asn c;
          c
    in
    cell.(b) <- cell.(b) +. 1.0
  in
  List.iter
    (fun (r : Dump.record) ->
      match Update.as_path r.Dump.update with
      | None -> ()
      | Some raw_path -> (
          match Clean.clean raw_path with
          | None -> ()
          | Some path ->
              let t = r.Dump.export_at in
              let prefix = Update.prefix r.Dump.update in
              List.iter
                (fun (bs, be, _) ->
                  if t >= bs && t < be && be > bs then begin
                    let width = (be -. bs) /. float_of_int bins in
                    let b =
                      Stdlib.min (bins - 1) (int_of_float ((t -. bs) /. width))
                    in
                    List.iter (fun asn -> bump asn b) path
                  end)
                (windows_of prefix)))
    records;
  Hashtbl.fold (fun asn h m -> Asn.Map.add asn h m) acc Asn.Map.empty

let scores ~records ~windows_of =
  Asn.Map.map score_of_histogram (histograms ~records ~windows_of)
