open Because_bgp

let scores observations =
  let totals = Hashtbl.create 64 in
  List.iter
    (fun (path, rfd) ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun asn ->
          if not (Hashtbl.mem seen asn) then begin
            Hashtbl.replace seen asn ();
            let pos, all =
              Option.value (Hashtbl.find_opt totals asn) ~default:(0, 0)
            in
            Hashtbl.replace totals asn
              ((if rfd then pos + 1 else pos), all + 1)
          end)
        path)
    observations;
  Hashtbl.fold
    (fun asn (pos, all) acc ->
      Asn.Map.add asn (float_of_int pos /. float_of_int all) acc)
    totals Asn.Map.empty
