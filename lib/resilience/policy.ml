type t = {
  base_s : float;
  cap_s : float;
  max_attempts : int;
  jitter : float;
  seed : int;
}

let make ?(base_s = 0.01) ?(cap_s = 1.0) ?(max_attempts = 3) ?(jitter = 0.5)
    ?(seed = 0) () =
  if base_s < 0.0 || cap_s < 0.0 then
    invalid_arg "Policy.make: negative delay";
  if max_attempts < 1 then invalid_arg "Policy.make: max_attempts < 1";
  if jitter < 0.0 || jitter > 1.0 then
    invalid_arg "Policy.make: jitter outside [0,1]";
  { base_s; cap_s; max_attempts; jitter; seed }

let default = make ()

(* splitmix64 finalizer: a few multiplies turn (seed, attempt) into a
   well-mixed word, which is all the jitter needs. *)
let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform in [0,1) from the top 53 bits of the mixed word. *)
let unit_float t ~attempt =
  let z =
    mix64 (Int64.add (Int64.mul (Int64.of_int t.seed) 0x9e3779b97f4a7c15L)
             (Int64.of_int attempt))
  in
  Int64.to_float (Int64.shift_right_logical z 11) *. 0x1p-53

let delay_s t ~attempt =
  if attempt <= 0 then 0.0
  else
    let raw =
      Float.min t.cap_s (t.base_s *. Float.of_int (1 lsl min (attempt - 1) 20))
    in
    (* Jitter only ever shrinks the delay (decorrelates retry herds
       without breaching the cap). *)
    raw *. (1.0 -. (t.jitter *. unit_float t ~attempt))

let retries_left t ~attempt = attempt < t.max_attempts

let wait t ~attempt =
  let d = delay_s t ~attempt in
  if d > 0.0 then begin
    let t0 = Monotonic_clock.now () in
    let target = Int64.add t0 (Int64.of_float (d *. 1e9)) in
    while Int64.compare (Monotonic_clock.now ()) target < 0 do
      Domain.cpu_relax ()
    done
  end
