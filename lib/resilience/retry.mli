(** Retry driver: run an operation under a {!Policy.t}, optionally
    guarded by a {!Breaker.t}.

    The driver loops attempts, sleeping the policy's deterministic
    backoff between them.  An exception the [retryable] predicate
    rejects, or the last attempt's exception, propagates to the caller
    unchanged; an open breaker raises {!Open_circuit} without running
    the operation at all. *)

exception Open_circuit of string
(** Raised (with the operation label) when the breaker refuses. *)

val run :
  policy:Policy.t ->
  ?breaker:Breaker.t ->
  ?retryable:(exn -> bool) ->
  ?on_retry:(attempt:int -> exn -> unit) ->
  label:string ->
  (unit -> 'a) ->
  'a
(** [run ~policy ~label f] calls [f] up to [policy.max_attempts] times.
    [retryable] defaults to retrying every exception; [on_retry] is
    called before each backoff wait (telemetry, logging).  [Drained]-
    style control exceptions should be excluded via [retryable]. *)
