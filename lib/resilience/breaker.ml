type state = Closed | Open | Half_open

type t = {
  threshold : int;
  cooldown_s : float;
  mu : Mutex.t;
  mutable st : state;
  mutable failures : int;
  mutable opened_at : int64;
  mutable trips : int;
}

let create ?(threshold = 8) ?(cooldown_s = 0.25) () =
  if threshold < 1 then invalid_arg "Breaker.create: threshold < 1";
  if cooldown_s < 0.0 then invalid_arg "Breaker.create: cooldown_s < 0";
  { threshold; cooldown_s; mu = Mutex.create (); st = Closed; failures = 0;
    opened_at = 0L; trips = 0 }

let trip t =
  t.st <- Open;
  t.opened_at <- Monotonic_clock.now ();
  t.trips <- t.trips + 1

let allow t =
  Mutex.protect t.mu (fun () ->
      match t.st with
      | Closed | Half_open -> true
      | Open ->
          let elapsed_s =
            Int64.to_float (Int64.sub (Monotonic_clock.now ()) t.opened_at)
            *. 1e-9
          in
          if elapsed_s >= t.cooldown_s then begin
            t.st <- Half_open;
            true
          end
          else false)

let success t =
  Mutex.protect t.mu (fun () ->
      t.st <- Closed;
      t.failures <- 0)

let failure t =
  Mutex.protect t.mu (fun () ->
      match t.st with
      | Half_open -> trip t
      | Open -> ()
      | Closed ->
          t.failures <- t.failures + 1;
          if t.failures >= t.threshold then trip t)

let state t = Mutex.protect t.mu (fun () -> t.st)
let trips t = Mutex.protect t.mu (fun () -> t.trips)
