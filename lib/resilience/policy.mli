(** Unified retry policy: capped exponential backoff with deterministic
    seeded jitter and an explicit attempt budget.

    One policy value describes how a whole class of operations retries —
    campaign supervision, spool intake, checkpoint writes — so backoff
    behaviour is tuned in one place instead of per call site.  Delays are
    a pure function of [(policy, attempt)]: the jitter comes from a
    splitmix-style hash of the policy seed and the attempt number, never
    from a global RNG, so a replayed schedule waits exactly as long as
    the original and chaos runs stay reproducible. *)

type t = private {
  base_s : float;      (** Delay before the first retry, seconds. *)
  cap_s : float;       (** Ceiling on any single delay, seconds. *)
  max_attempts : int;  (** Total attempts including the first (>= 1). *)
  jitter : float;      (** Fraction of each delay randomized, in [0,1]. *)
  seed : int;          (** Seed of the deterministic jitter stream. *)
}

val make :
  ?base_s:float ->
  ?cap_s:float ->
  ?max_attempts:int ->
  ?jitter:float ->
  ?seed:int ->
  unit ->
  t
(** Defaults: [base_s 0.01], [cap_s 1.0], [max_attempts 3], [jitter 0.5],
    [seed 0].  Raises [Invalid_argument] on a negative delay,
    [max_attempts < 1] or [jitter] outside [0,1]. *)

val default : t

val delay_s : t -> attempt:int -> float
(** Delay after failed attempt [attempt] (1-based): exponential
    [base_s * 2^(attempt-1)] capped at [cap_s], then shrunk by up to
    [jitter] of itself according to the hash of [(seed, attempt)].
    [attempt <= 0] is [0].  Deterministic. *)

val retries_left : t -> attempt:int -> bool
(** Whether the budget allows another attempt after attempt [attempt]. *)

val wait : t -> attempt:int -> unit
(** Busy-wait {!delay_s} on the monotonic clock ([Domain.cpu_relax] in
    the loop; no Unix dependency, usable from any worker domain). *)
