exception Open_circuit of string

let run ~policy ?breaker ?(retryable = fun _ -> true) ?on_retry ~label f =
  let allow () =
    match breaker with None -> true | Some b -> Breaker.allow b
  in
  let record ok =
    match breaker with
    | None -> ()
    | Some b -> if ok then Breaker.success b else Breaker.failure b
  in
  let rec attempt n =
    if not (allow ()) then raise (Open_circuit label);
    match f () with
    | v ->
        record true;
        v
    | exception e ->
        record false;
        if (not (retryable e)) || not (Policy.retries_left policy ~attempt:n)
        then raise e
        else begin
          (match on_retry with
          | Some g -> g ~attempt:n e
          | None -> ());
          Policy.wait policy ~attempt:n;
          attempt (n + 1)
        end
  in
  attempt 1
