(** Circuit breaker over the monotonic clock.

    Tracks consecutive failures of a guarded operation.  After
    [threshold] failures in a row the circuit {e opens}: {!allow}
    refuses immediately (the caller fails fast instead of hammering a
    broken disk or peer) until [cooldown_s] has elapsed, at which point
    exactly one probe is let through ({e half-open}).  A successful
    probe closes the circuit; a failed one re-opens it for another
    cooldown.

    All transitions are mutex-guarded and safe from any domain. *)

type state = Closed | Open | Half_open

type t

val create : ?threshold:int -> ?cooldown_s:float -> unit -> t
(** Defaults: [threshold 8] consecutive failures, [cooldown_s 0.25].
    Raises [Invalid_argument] if [threshold < 1] or [cooldown_s < 0]. *)

val allow : t -> bool
(** Whether the guarded operation may run now.  [Open] returns [false]
    until the cooldown elapses, then transitions to [Half_open] and
    admits one probe. *)

val success : t -> unit
(** Record a success: closes the circuit and clears the failure run. *)

val failure : t -> unit
(** Record a failure: trips the circuit at [threshold] consecutive
    failures, and re-opens immediately from [Half_open]. *)

val state : t -> state

val trips : t -> int
(** How many times the circuit has opened so far. *)
